#include "sim/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace flare {
namespace {

double SteadyNowUs() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

}  // namespace

void EventDomain::Post(int to, std::string payload) {
  DomainMessage msg;
  msg.from = id_;
  msg.to = to;
  msg.seq = next_seq_++;
  msg.payload = std::move(payload);
  outbox_.push_back(std::move(msg));
}

void EventDomain::Advance(SimTime until, SimTime epoch_start) {
  if (tracer_ == nullptr) {
    sim_.RunUntil(until);
    return;
  }
  const bool timed = !tracer_->deterministic();
  const double wall_begin = timed ? SteadyNowUs() : 0.0;
  sim_.RunUntil(until);
  last_advance_wall_us_ = timed ? SteadyNowUs() - wall_begin : 0.0;
  tracer_->CompleteSpan(kLaneRunner, "runner", "advance",
                        static_cast<double>(epoch_start),
                        last_advance_wall_us_);
}

ParallelRunner::ParallelRunner(const Options& options) : options_(options) {
  options_.epoch = std::max<SimTime>(options_.epoch, kTti);
  if (options_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.workers);
  }
}

ParallelRunner::~ParallelRunner() = default;

EventDomain& ParallelRunner::AddDomain() {
  const int id = static_cast<int>(domains_.size());
  domains_.emplace_back(new EventDomain(id));
  return *domains_.back();
}

void ParallelRunner::SetObservers(MetricsRegistry* registry,
                                  SpanTracer* tracer, bool deterministic) {
  tracer_ = tracer;
  deterministic_ = deterministic;
  const std::vector<double> ms_bounds = {0.01, 0.05, 0.1, 0.5, 1.0,
                                         5.0,  10.0, 50.0, 100.0};
  epoch_ms_metric_ =
      MakeHistogramHandle(registry, "runner.epoch_ms", ms_bounds);
  barrier_wait_ms_metric_ =
      MakeHistogramHandle(registry, "runner.barrier_wait_ms", ms_bounds);
  drain_ms_metric_ =
      MakeHistogramHandle(registry, "runner.drain_ms", ms_bounds);
  epochs_metric_ = MakeCounterHandle(registry, "runner.epochs");
  messages_metric_ = MakeCounterHandle(registry, "runner.messages");
}

void ParallelRunner::RunUntil(SimTime horizon) {
  SimTime now = 0;
  while (now < horizon) {
    const SimTime epoch_start = now;
    now = std::min<SimTime>(now + options_.epoch, horizon);
    // Wall-clock reads are skipped entirely in deterministic mode so the
    // recorded bytes cannot depend on thread scheduling.
    const bool timed =
        !deterministic_ && (tracer_ != nullptr || epoch_ms_metric_.enabled());
    const double phase_begin = timed ? SteadyNowUs() : 0.0;
    if (pool_ != nullptr) {
      std::vector<std::function<void()>> jobs;
      jobs.reserve(domains_.size());
      for (auto& d : domains_) {
        EventDomain* domain = d.get();
        jobs.push_back(
            [domain, now, epoch_start] { domain->Advance(now, epoch_start); });
      }
      pool_->RunAll(std::move(jobs));  // full barrier
    } else {
      for (auto& d : domains_) d->Advance(now, epoch_start);
    }
    const double phase_us = timed ? SteadyNowUs() - phase_begin : 0.0;
    // Post-barrier the coordinator owns every shard (the pool join is the
    // happens-before edge), so it may append the per-domain wait spans.
    for (auto& d : domains_) {
      if (d->tracer_ == nullptr) continue;
      const double wait_us =
          std::max(0.0, phase_us - d->last_advance_wall_us_);
      d->tracer_->CompleteSpan(kLaneRunner, "runner", "barrier.wait",
                               static_cast<double>(now), wait_us);
      barrier_wait_ms_metric_.Observe(wait_us / 1000.0);
    }
    ++epochs_;
    epochs_metric_.Add();
    const std::uint64_t delivered_before = delivered_;
    const double drain_begin = timed ? SteadyNowUs() : 0.0;
    DeliverAtBarrier();
    const double drain_us = timed ? SteadyNowUs() - drain_begin : 0.0;
    const std::uint64_t batch = delivered_ - delivered_before;
    messages_metric_.Add(batch);
    epoch_ms_metric_.Observe((phase_us + drain_us) / 1000.0);
    drain_ms_metric_.Observe(drain_us / 1000.0);
    if (tracer_ != nullptr) {
      tracer_->CompleteSpan(kLaneRunner, "runner", "epoch",
                            static_cast<double>(epoch_start), phase_us,
                            "{\"epoch\":" + std::to_string(epochs_) + "}");
      tracer_->CompleteSpan(kLaneRunner, "runner", "barrier.drain",
                            static_cast<double>(now), drain_us);
      tracer_->Counter(kLaneRunner, "runner.mailbox_messages",
                       static_cast<double>(now),
                       static_cast<double>(batch));
    }
  }
}

void ParallelRunner::DeliverAtBarrier() {
  // Handlers may post follow-ups; keep draining rounds until quiescent.
  // Each round visits domains in id order and each outbox in seq order,
  // so delivery order is a pure function of what was posted — never of
  // thread scheduling.
  for (;;) {
    std::vector<DomainMessage> batch;
    for (auto& d : domains_) {
      for (DomainMessage& msg : d->outbox_) {
        batch.push_back(std::move(msg));
      }
      d->outbox_.clear();
    }
    if (batch.empty()) return;
    for (const DomainMessage& msg : batch) {
      if (msg.to == kCoordinatorDomain) {
        if (coordinator_handler_) coordinator_handler_(msg);
      } else if (msg.to >= 0 &&
                 msg.to < static_cast<int>(domains_.size())) {
        auto& handler = domains_[static_cast<std::size_t>(msg.to)]->handler_;
        if (handler) handler(msg);
      }
      ++delivered_;
    }
  }
}

}  // namespace flare
