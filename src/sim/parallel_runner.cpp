#include "sim/parallel_runner.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace flare {
namespace {

double SteadyNowUs() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

}  // namespace

std::string& EventDomain::StartPost(int to) {
  DomainMessage msg;
  if (!free_.empty()) {
    msg = std::move(free_.back());
    free_.pop_back();
  }
  msg.from = id_;
  msg.to = to;
  msg.seq = next_seq_++;
  msg.payload.clear();  // keep the recycled buffer's capacity
  outbox_.push_back(std::move(msg));
  return outbox_.back().payload;
}

void EventDomain::Post(int to, std::string payload) {
  // assign() copies into the pooled buffer so its capacity survives for
  // the next epoch; the caller's string dies either way.
  StartPost(to).assign(payload);
}

void EventDomain::Advance(SimTime until, SimTime epoch_start) {
  if (tracer_ == nullptr) {
    sim_.RunUntil(until);
    return;
  }
  const bool timed = !tracer_->deterministic();
  const double wall_begin = timed ? SteadyNowUs() : 0.0;
  sim_.RunUntil(until);
  last_advance_wall_us_ = timed ? SteadyNowUs() - wall_begin : 0.0;
  tracer_->CompleteSpan(kLaneRunner, "runner", "advance",
                        static_cast<double>(epoch_start),
                        last_advance_wall_us_);
}

ParallelRunner::ParallelRunner(const Options& options) : options_(options) {
  options_.epoch = std::max<SimTime>(options_.epoch, kTti);
  options_.workers = std::max(options_.workers, 0);
}

ParallelRunner::~ParallelRunner() { StopWorkers(); }

EventDomain& ParallelRunner::AddDomain() {
  const int id = static_cast<int>(domains_.size());
  domains_.emplace_back(new EventDomain(id));
  return *domains_.back();
}

void ParallelRunner::SetObservers(MetricsRegistry* registry,
                                  SpanTracer* tracer, bool deterministic) {
  tracer_ = tracer;
  deterministic_ = deterministic;
  const std::vector<double> ms_bounds = {0.01, 0.05, 0.1, 0.5, 1.0,
                                         5.0,  10.0, 50.0, 100.0};
  epoch_ms_metric_ =
      MakeHistogramHandle(registry, "runner.epoch_ms", ms_bounds);
  barrier_wait_ms_metric_ =
      MakeHistogramHandle(registry, "runner.barrier_wait_ms", ms_bounds);
  drain_ms_metric_ =
      MakeHistogramHandle(registry, "runner.drain_ms", ms_bounds);
  epochs_metric_ = MakeCounterHandle(registry, "runner.epochs");
  messages_metric_ = MakeCounterHandle(registry, "runner.messages");
}

void ParallelRunner::PreparePartitions() {
  const std::size_t n_domains = domains_.size();
  const std::size_t n_workers = std::min<std::size_t>(
      static_cast<std::size_t>(options_.workers), n_domains);
  if (n_workers == 0) return;
  // Static id-ordered partition: worker w owns the contiguous domain
  // range [w*D/N, (w+1)*D/N) for the whole run. Ownership is fixed, so
  // epochs build no closures and touch no shared job queue.
  if (partitions_.size() != workers_.size() ||
      (!partitions_.empty() && partitions_.back().second != n_domains) ||
      workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      partitions_.resize(n_workers);
      for (std::size_t w = 0; w < n_workers; ++w) {
        partitions_[w] = {w * n_domains / n_workers,
                          (w + 1) * n_domains / n_workers};
      }
    }
    // Spawn once, lazily: domains are added after construction, and the
    // partition needs the final count. A worker spawned after earlier
    // runs must start at the current generation or it would "arrive" at
    // an epoch that already completed.
    while (workers_.size() < n_workers) {
      const std::size_t w = workers_.size();
      workers_.emplace_back(
          [this, w, gen = generation_] { WorkerLoop(w, gen); });
    }
  }
}

void ParallelRunner::RunEpochOnWorkers(SimTime until, SimTime epoch_start) {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  epoch_until_ = until;
  epoch_start_ = epoch_start;
  workers_remaining_ = workers_.size();
  ++generation_;
  // Every worker has a non-empty partition, so waking them all is work,
  // not a thundering herd.
  epoch_cv_.notify_all();
  done_cv_.wait(lock, [this] { return workers_remaining_ == 0; });
  if (worker_error_ != nullptr) {
    std::exception_ptr error = std::exchange(worker_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelRunner::WorkerLoop(std::size_t worker, std::uint64_t seen) {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  for (;;) {
    epoch_cv_.wait(lock,
                   [this, seen] { return stop_workers_ || generation_ != seen; });
    if (stop_workers_) return;
    seen = generation_;
    const SimTime until = epoch_until_;
    const SimTime epoch_start = epoch_start_;
    const auto range = partitions_[worker];
    lock.unlock();
    // A throwing domain must still arrive at the barrier or the
    // coordinator waits forever; the first error is rethrown there.
    std::exception_ptr error;
    try {
      for (std::size_t i = range.first; i < range.second; ++i) {
        domains_[i]->Advance(until, epoch_start);
      }
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && worker_error_ == nullptr) {
      worker_error_ = std::move(error);
    }
    if (--workers_remaining_ == 0) done_cv_.notify_one();
  }
}

void ParallelRunner::StopWorkers() {
  if (workers_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(barrier_mu_);
    stop_workers_ = true;
  }
  epoch_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  stop_workers_ = false;
}

void ParallelRunner::RunUntil(SimTime horizon) {
  if (options_.workers > 0) PreparePartitions();
  SimTime now = 0;
  while (now < horizon) {
    const SimTime epoch_start = now;
    now = std::min<SimTime>(now + options_.epoch, horizon);
    // Wall-clock reads are skipped entirely in deterministic mode so the
    // recorded bytes cannot depend on thread scheduling.
    const bool timed =
        !deterministic_ && (tracer_ != nullptr || epoch_ms_metric_.enabled());
    const double phase_begin = timed ? SteadyNowUs() : 0.0;
    if (!workers_.empty()) {
      RunEpochOnWorkers(now, epoch_start);
    } else {
      for (auto& d : domains_) d->Advance(now, epoch_start);
    }
    const double phase_us = timed ? SteadyNowUs() - phase_begin : 0.0;
    // Post-barrier the coordinator owns every shard (the barrier join is
    // the happens-before edge), so it may append the per-domain wait spans.
    for (auto& d : domains_) {
      if (d->tracer_ == nullptr) continue;
      const double wait_us =
          std::max(0.0, phase_us - d->last_advance_wall_us_);
      d->tracer_->CompleteSpan(kLaneRunner, "runner", "barrier.wait",
                               static_cast<double>(now), wait_us);
      barrier_wait_ms_metric_.Observe(wait_us / 1000.0);
    }
    ++epochs_;
    epochs_metric_.Add();
    const std::uint64_t delivered_before = delivered_;
    const double drain_begin = timed ? SteadyNowUs() : 0.0;
    DeliverAtBarrier();
    const double drain_us = timed ? SteadyNowUs() - drain_begin : 0.0;
    const std::uint64_t batch = delivered_ - delivered_before;
    messages_metric_.Add(batch);
    epoch_ms_metric_.Observe((phase_us + drain_us) / 1000.0);
    drain_ms_metric_.Observe(drain_us / 1000.0);
    if (tracer_ != nullptr) {
      tracer_->CompleteSpan(kLaneRunner, "runner", "epoch",
                            static_cast<double>(epoch_start), phase_us,
                            "{\"epoch\":" + std::to_string(epochs_) + "}");
      tracer_->CompleteSpan(kLaneRunner, "runner", "barrier.drain",
                            static_cast<double>(now), drain_us);
      tracer_->Counter(kLaneRunner, "runner.mailbox_messages",
                       static_cast<double>(now),
                       static_cast<double>(batch));
    }
    if (barrier_hook_) barrier_hook_(now);
  }
}

void ParallelRunner::Deliver(const DomainMessage& msg) {
  if (msg.to == kCoordinatorDomain) {
    if (coordinator_handler_) coordinator_handler_(msg);
  } else if (msg.to >= 0 && msg.to < static_cast<int>(domains_.size())) {
    auto& handler = domains_[static_cast<std::size_t>(msg.to)]->handler_;
    if (handler) handler(msg);
  }
  ++delivered_;
}

void ParallelRunner::DeliverAtBarrier() {
  // Handlers may post follow-ups; keep draining rounds until quiescent.
  // Each round visits domains in id order and each outbox in seq order,
  // so delivery order is a pure function of what was posted — never of
  // thread scheduling. Outboxes are swapped whole into per-domain scratch
  // vectors (handlers then post into the emptied outbox without
  // invalidating the batch being walked), and every delivered entry goes
  // back to its sender's free list with payload capacity intact.
  drain_scratch_.resize(domains_.size());
  for (;;) {
    bool any = false;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      if (!domains_[i]->outbox_.empty()) {
        domains_[i]->outbox_.swap(drain_scratch_[i]);
        any = true;
      }
    }
    if (!any) return;
    for (std::size_t i = 0; i < domains_.size(); ++i) {
      std::vector<DomainMessage>& batch = drain_scratch_[i];
      for (const DomainMessage& msg : batch) Deliver(msg);
      // All entries in this scratch came from domain i's outbox; recycle
      // them (and their payload buffers) for its next epoch's posts.
      std::vector<DomainMessage>& pool = domains_[i]->free_;
      for (DomainMessage& msg : batch) pool.push_back(std::move(msg));
      batch.clear();
    }
  }
}

}  // namespace flare
