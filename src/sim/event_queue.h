// Discrete-event queue.
//
// Events at the same timestamp fire in scheduling order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic
// regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace flare {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void Push(SimTime at, EventFn fn);

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  /// Time of the earliest pending event; undefined when empty.
  SimTime NextTime() const { return heap_.top().at; }

  /// Pops and runs the earliest event. Caller must check Empty() first.
  void RunNext();

  void Clear();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace flare
