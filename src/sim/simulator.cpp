#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace flare {

void Simulator::At(SimTime at, EventFn fn) {
  queue_.Push(std::max(at, now_), std::move(fn));
}

void Simulator::After(SimTime delay, EventFn fn) {
  At(now_ + std::max<SimTime>(delay, 0), std::move(fn));
}

void Simulator::Every(SimTime start, SimTime period, EventFn fn) {
  ScheduleTick(start, period, std::make_shared<EventFn>(std::move(fn)));
}

void Simulator::ScheduleTick(SimTime at, SimTime period,
                             std::shared_ptr<EventFn> task) {
  // A fresh wrapper is built for every occurrence: the queued callable
  // owns the task, runs it, and hands ownership to the next occurrence.
  // (The previous implementation stored the wrapper in a shared_ptr that
  // its own capture list kept alive — a reference cycle that leaked every
  // recurring task's callable for the life of the process.)
  At(at, [this, period, task = std::move(task)]() mutable {
    (*task)();
    ScheduleTick(now_ + period, period, std::move(task));
  });
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++events_processed_;
    events_metric_.Add();
  }
  // Even if no event lands exactly at `until`, the run semantically covers
  // [0, until]; advance the clock so metrics see the full horizon. A Stop()
  // keeps the clock at the stopping event instead.
  if (!stopped_) now_ = std::max(now_, until);
  queue_depth_metric_.Set(static_cast<double>(queue_.Size()));
}

void Simulator::SetMetrics(MetricsRegistry* registry) {
  events_metric_ = MakeCounterHandle(registry, "sim.events");
  queue_depth_metric_ = MakeGaugeHandle(registry, "sim.queue_depth");
}

}  // namespace flare
