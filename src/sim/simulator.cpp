#include "sim/simulator.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace flare {

void Simulator::At(SimTime at, EventFn fn) {
  queue_.Push(std::max(at, now_), std::move(fn));
}

void Simulator::After(SimTime delay, EventFn fn) {
  At(now_ + std::max<SimTime>(delay, 0), std::move(fn));
}

void Simulator::Every(SimTime start, SimTime period, EventFn fn) {
  // Self-rescheduling wrapper. The shared_ptr keeps the callable alive
  // across reschedules; the chain ends when RunUntil stops draining.
  auto task = std::make_shared<EventFn>(std::move(fn));
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, task, tick, period]() {
    (*task)();
    queue_.Push(now_ + period, *tick);
  };
  At(start, *tick);
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    now_ = queue_.NextTime();
    queue_.RunNext();
    ++events_processed_;
  }
  // Even if no event lands exactly at `until`, the run semantically covers
  // [0, until]; advance the clock so metrics see the full horizon. A Stop()
  // keeps the clock at the stopping event instead.
  if (!stopped_) now_ = std::max(now_, until);
}

}  // namespace flare
