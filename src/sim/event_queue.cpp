#include "sim/event_queue.h"

#include <utility>

namespace flare {

void EventQueue::Push(SimTime at, EventFn fn) {
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

void EventQueue::RunNext() {
  // Move the callback out before popping: running it may push new events,
  // and we must not hold a reference into the heap across that.
  EventFn fn = std::move(const_cast<Event&>(heap_.top()).fn);
  heap_.pop();
  fn();
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace flare
