#include "obs/qoe_analytics.h"

#include <cmath>
#include <fstream>
#include <ostream>

#include "util/csv.h"
#include "util/stats.h"

namespace flare {
namespace {

/// Mean of a vector; 0 when empty.
double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

const char* QoeSessionOriginName(QoeSessionOrigin origin) {
  switch (origin) {
    case QoeSessionOrigin::kStaticVideo: return "static";
    case QoeSessionOrigin::kConventional: return "conventional";
    case QoeSessionOrigin::kDynamicVideo: return "dynamic";
  }
  return "unknown";
}

double QoeSessionStats::AvgBitrateBps() const {
  if (segments == 0) return 0.0;
  return bitrate_sum_bps / static_cast<double>(segments);
}

double QoeSessionStats::StallRatio() const {
  const double denom = played_s + stall_s;
  if (denom <= 0.0) return 0.0;
  return stall_s / denom;
}

double QoeSessionStats::Qoe(const QoeEngineWeights& weights) const {
  // Mirrors has/metrics.h QoeScore term for term (same summation order, so
  // the scenario cross-check agrees to fp noise).
  if (segments == 0) return 0.0;
  const double k = static_cast<double>(segments);
  const double playtime_s = played_s + stall_s;
  const double stall_fraction = playtime_s > 0.0 ? stall_s / playtime_s : 0.0;
  return (quality_sum - weights.lambda_switch * switch_magnitude_sum) / k -
         weights.mu_rebuffer * stall_fraction;
}

QoeAnalytics::QoeAnalytics(QoeEngineWeights weights) : weights_(weights) {}

QoeSessionStats* QoeAnalytics::Session(int session) {
  QoeSessionStats& stats = sessions_[{cell_, session}];
  stats.cell = cell_;
  stats.session = session;
  return &stats;
}

void QoeAnalytics::StartSession(int session, FlowId flow, double t_s,
                                QoeSessionOrigin origin) {
  QoeSessionStats* s = Session(session);
  s->flow = flow;
  s->origin = origin;
  s->start_s = t_s;
}

void QoeAnalytics::OnPlayoutStart(int session, double t_s) {
  QoeSessionStats* s = Session(session);
  if (s->startup_delay_s < 0.0) s->startup_delay_s = t_s - s->start_s;
}

void QoeAnalytics::OnSegment(int session, double bitrate_bps,
                             double duration_s) {
  QoeSessionStats* s = Session(session);
  const double q = bitrate_bps / 1e6;
  if (s->segments > 0 && bitrate_bps != s->last_bitrate_bps) {
    ++s->switches;
    s->switch_magnitude_sum += std::abs(q - s->last_bitrate_bps / 1e6);
  }
  ++s->segments;
  s->bitrate_sum_bps += bitrate_bps;
  s->quality_sum += q;
  s->last_bitrate_bps = bitrate_bps;
  s->media_s += duration_s;
}

void QoeAnalytics::OnStallBegin(int session, double t_s) {
  QoeSessionStats* s = Session(session);
  if (s->active_stall_begin_s >= 0.0) return;  // already stalled
  ++s->stalls;
  s->active_stall_begin_s = t_s;
}

void QoeAnalytics::OnStallEnd(int session, double t_s) {
  QoeSessionStats* s = Session(session);
  if (s->active_stall_begin_s < 0.0) return;
  if (t_s > s->active_stall_begin_s) {
    s->stall_s += t_s - s->active_stall_begin_s;
  }
  s->active_stall_begin_s = -1.0;
}

void QoeAnalytics::EndSession(int session, double t_s, double played_s) {
  QoeSessionStats* s = Session(session);
  OnStallEnd(session, t_s);  // account an open stall up to the end
  s->ended = true;
  s->end_s = t_s;
  s->played_s = played_s;
}

void QoeAnalytics::OnAdmissionVerdict(bool admitted) {
  CellAggregates& agg = cells_[cell_];
  if (admitted) {
    ++agg.admitted;
  } else {
    ++agg.blocked;
  }
}

void QoeAnalytics::OnRungChange(const char* cause) {
  ++cells_[cell_].rung_change_causes[cause != nullptr ? cause : "unknown"];
}

void QoeAnalytics::AbsorbShard(const QoeAnalytics& shard, int cell) {
  for (const auto& [key, stats] : shard.sessions_) {
    QoeSessionStats copy = stats;
    copy.cell = cell;
    sessions_[{cell, key.second}] = copy;
  }
  for (const auto& [shard_cell, agg] : shard.cells_) {
    (void)shard_cell;  // the shard recorded under its local tag
    CellAggregates& mine = cells_[cell];
    mine.admitted += agg.admitted;
    mine.blocked += agg.blocked;
    for (const auto& [cause, count] : agg.rung_change_causes) {
      mine.rung_change_causes[cause] += count;
    }
  }
}

QoeLiveSummary QoeAnalytics::LiveSummary() const {
  QoeLiveSummary live;
  live.sessions = sessions_.size();
  std::vector<double> bitrates;
  double stall_s = 0.0;
  double playtime_s = 0.0;
  double qoe_sum = 0.0;
  for (const auto& [key, s] : sessions_) {
    live.stalls += s.stalls;
    if (s.segments == 0) continue;
    ++live.played;
    bitrates.push_back(s.AvgBitrateBps());
    live.switches += s.switches;
    stall_s += s.stall_s;
    playtime_s += s.played_s + s.stall_s;
    qoe_sum += s.Qoe(weights_);
  }
  // Mean over an empty vector is 0 but Jain of nothing stays the
  // "perfectly fair" 1.0 default, matching the end-of-run summary.
  if (!bitrates.empty()) {
    double sum = 0.0;
    for (double b : bitrates) sum += b;
    live.avg_bitrate_bps = sum / static_cast<double>(bitrates.size());
    live.jain_avg_bitrate = JainIndex(bitrates);
    live.avg_qoe = qoe_sum / static_cast<double>(bitrates.size());
  }
  live.stall_ratio = playtime_s > 0.0 ? stall_s / playtime_s : 0.0;
  live.admitted = admitted();
  live.blocked = blocked();
  const std::uint64_t arrivals = live.admitted + live.blocked;
  live.blocking_probability =
      arrivals > 0 ? static_cast<double>(live.blocked) /
                         static_cast<double>(arrivals)
                   : 0.0;
  return live;
}

const QoeSessionStats* QoeAnalytics::FindSession(int cell, int session) const {
  const auto it = sessions_.find({cell, session});
  return it == sessions_.end() ? nullptr : &it->second;
}

std::uint64_t QoeAnalytics::admitted() const {
  std::uint64_t total = 0;
  for (const auto& [cell, agg] : cells_) total += agg.admitted;
  return total;
}

std::uint64_t QoeAnalytics::blocked() const {
  std::uint64_t total = 0;
  for (const auto& [cell, agg] : cells_) total += agg.blocked;
  return total;
}

void QoeAnalytics::WriteAggregateJson(
    std::ostream& out, const std::vector<const QoeSessionStats*>& sessions,
    const CellAggregates& agg) const {
  // Fairness / averages are over sessions that played at least one
  // segment; blocked-then-gone dynamic sessions only show up in the
  // admitted/blocked counters.
  std::vector<double> bitrates;
  std::vector<double> dynamic_qoe;
  double switches = 0.0;
  double stall_s = 0.0;
  double playtime_s = 0.0;
  double qoe_sum = 0.0;
  std::size_t played = 0;
  for (const QoeSessionStats* s : sessions) {
    if (s->segments == 0) {
      if (s->origin == QoeSessionOrigin::kDynamicVideo) {
        dynamic_qoe.push_back(0.0);
      }
      continue;
    }
    ++played;
    bitrates.push_back(s->AvgBitrateBps());
    switches += static_cast<double>(s->switches);
    stall_s += s->stall_s;
    playtime_s += s->played_s + s->stall_s;
    const double qoe = s->Qoe(weights_);
    qoe_sum += qoe;
    if (s->origin == QoeSessionOrigin::kDynamicVideo) {
      dynamic_qoe.push_back(qoe);
    }
  }
  const double n = static_cast<double>(played);
  out << "\"sessions\": " << sessions.size()
      << ", \"played_sessions\": " << played
      << ", \"avg_bitrate_bps\": " << JsonNumber(Mean(bitrates))
      << ", \"jain_avg_bitrate\": " << JsonNumber(JainIndex(bitrates))
      << ", \"avg_switches\": " << JsonNumber(played > 0 ? switches / n : 0.0)
      << ", \"stall_ratio\": "
      << JsonNumber(playtime_s > 0.0 ? stall_s / playtime_s : 0.0)
      << ", \"avg_qoe\": " << JsonNumber(played > 0 ? qoe_sum / n : 0.0)
      << ", \"avg_admitted_qoe\": " << JsonNumber(Mean(dynamic_qoe))
      << ", \"admitted\": " << agg.admitted
      << ", \"blocked\": " << agg.blocked << ", \"blocking_probability\": "
      << JsonNumber(agg.admitted + agg.blocked > 0
                        ? static_cast<double>(agg.blocked) /
                              static_cast<double>(agg.admitted + agg.blocked)
                        : 0.0)
      << ", \"rung_change_causes\": {";
  bool first = true;
  for (const auto& [cause, count] : agg.rung_change_causes) {
    if (!first) out << ", ";
    first = false;
    out << '"' << cause << "\": " << count;
  }
  out << '}';
}

void QoeAnalytics::WriteJson(std::ostream& out) const {
  out << "{\"weights\": {\"lambda_switch\": "
      << JsonNumber(weights_.lambda_switch)
      << ", \"mu_rebuffer\": " << JsonNumber(weights_.mu_rebuffer) << "},\n";

  out << "\"sessions\": [";
  bool first = true;
  for (const auto& [key, s] : sessions_) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"cell\": " << s.cell << ", \"session\": " << s.session
        << ", \"flow\": ";
    if (s.flow == kInvalidFlow) {
      out << "null";
    } else {
      out << s.flow;
    }
    out << ", \"origin\": \"" << QoeSessionOriginName(s.origin) << '"'
        << ", \"start_s\": " << JsonNumber(s.start_s)
        << ", \"end_s\": " << JsonNumber(s.ended ? s.end_s : s.start_s)
        << ", \"segments\": " << s.segments
        << ", \"media_s\": " << JsonNumber(s.media_s)
        << ", \"avg_bitrate_bps\": " << JsonNumber(s.AvgBitrateBps())
        << ", \"switches\": " << s.switches << ", \"stalls\": " << s.stalls
        << ", \"stall_s\": " << JsonNumber(s.stall_s)
        << ", \"stall_ratio\": " << JsonNumber(s.StallRatio())
        << ", \"startup_delay_s\": ";
    if (s.startup_delay_s < 0.0) {
      out << "null";
    } else {
      out << JsonNumber(s.startup_delay_s);
    }
    out << ", \"qoe\": ";
    if (s.segments == 0) {
      out << "null";
    } else {
      out << JsonNumber(s.Qoe(weights_));
    }
    out << '}';
  }
  out << "\n],\n";

  // Per-cell aggregates: the union of cells seen by sessions and by
  // cell-level feeds (a cell can have verdicts but no surviving session).
  std::map<int, std::vector<const QoeSessionStats*>> by_cell;
  for (const auto& [key, s] : sessions_) by_cell[key.first].push_back(&s);
  std::map<int, CellAggregates> cells = cells_;
  for (const auto& entry : by_cell) cells.try_emplace(entry.first);

  out << "\"cells\": [";
  first = true;
  for (const auto& [cell, agg] : cells) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"cell\": " << cell << ", ";
    static const std::vector<const QoeSessionStats*> kNone;
    const auto it = by_cell.find(cell);
    WriteAggregateJson(out, it == by_cell.end() ? kNone : it->second, agg);
    out << '}';
  }
  out << "\n],\n";

  std::vector<const QoeSessionStats*> all;
  all.reserve(sessions_.size());
  for (const auto& [key, s] : sessions_) all.push_back(&s);
  CellAggregates total;
  for (const auto& [cell, agg] : cells_) {
    total.admitted += agg.admitted;
    total.blocked += agg.blocked;
    for (const auto& [cause, count] : agg.rung_change_causes) {
      total.rung_change_causes[cause] += count;
    }
  }
  out << "\"summary\": {";
  WriteAggregateJson(out, all, total);
  out << "}}";
}

bool QoeAnalytics::ExportCsv(const std::string& path) const {
  CsvWriter csv(path,
                {"cell", "session", "flow", "origin", "start_s", "end_s",
                 "segments", "media_s", "avg_bitrate_bps", "switches",
                 "stalls", "stall_s", "stall_ratio", "startup_delay_s",
                 "qoe"});
  if (!csv.ok()) return false;
  for (const auto& [key, s] : sessions_) {
    csv.RawRow({std::to_string(s.cell), std::to_string(s.session),
                s.flow == kInvalidFlow ? "" : std::to_string(s.flow),
                QoeSessionOriginName(s.origin), FormatNumber(s.start_s),
                FormatNumber(s.ended ? s.end_s : s.start_s),
                std::to_string(s.segments), FormatNumber(s.media_s),
                FormatNumber(s.AvgBitrateBps()), std::to_string(s.switches),
                std::to_string(s.stalls), FormatNumber(s.stall_s),
                FormatNumber(s.StallRatio()),
                s.startup_delay_s < 0.0 ? ""
                                        : FormatNumber(s.startup_delay_s),
                s.segments == 0 ? "" : FormatNumber(s.Qoe(weights_))});
  }
  return true;
}

}  // namespace flare
