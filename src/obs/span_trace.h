// Causal span tracing for the FLARE control loop.
//
// A SpanTracer collects Chrome trace-event records — complete spans
// ("X"), instant events ("i") and counter tracks ("C") — and writes them
// as trace-event JSON loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Timestamps are *simulated* microseconds (SimTime is
// already an integral microsecond count), so the trace timeline is the
// experiment timeline; durations are wall-clock microseconds, showing
// where real CPU time goes inside each simulated interval.
//
// Cost model follows MetricsRegistry: every record site takes a
// `SpanTracer*` that is null by default, so the disabled path is one
// predicted branch (bench_optimizer's BM_ObsOverhead pins this down).
//
// Threading model follows the sharded runtime (DESIGN.md §5d): a tracer
// is NOT internally synchronized. Each event domain records into its own
// per-cell shard (only the one worker advancing that domain touches it
// within an epoch; handoff happens at the pool barrier), and the
// coordinator's tracer is only touched between epochs. Shards are merged
// post-run in cell order with AbsorbShard() + SortMergedEvents(), which
// keeps the merged file byte-stable for any worker count.
//
// Determinism: with set_deterministic(true) (mirrors
// OneApiConfig::deterministic_timing) record sites skip the steady clock
// entirely and every duration is written as 0, so the emitted JSON is
// bit-identical across runs and worker counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace flare {

// Lane (Chrome "tid") assignments within a process (= cell). Fixed small
// integers so every cell's trace lines up the same way in the UI.
inline constexpr int kLaneControl = 0;  // OneAPI BAI ticks, solver, decisions
inline constexpr int kLaneMac = 1;      // Cell TTI-loop windows
inline constexpr int kLanePlayer = 2;   // player stall/switch/segment instants
inline constexpr int kLaneRunner = 3;   // epochs, barriers, mailbox drains

/// One trace-event record. `cat` and `name` must be string literals (or
/// otherwise outlive the tracer): they are stored unowned so a record
/// site costs one push_back, no allocation. `args`, when non-empty, is a
/// pre-rendered JSON object (use JsonQuote for embedded strings).
struct TraceEvent {
  double ts_us = 0.0;
  double dur_us = 0.0;  // "X" events only
  char ph = 'X';        // 'X' complete span, 'i' instant, 'C' counter
  int pid = 0;          // process = cell (+1); 0 = coordinator/runner
  int tid = kLaneControl;
  const char* cat = "";
  const char* name = "";
  double value = 0.0;  // 'C' events only
  std::string args;    // rendered JSON object, "" = none
};

/// Escape + quote `text` as a JSON string literal (including the quotes).
std::string JsonQuote(std::string_view text);

class SpanTracer {
 public:
  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// Clock used by SpanScope (and any site without direct simulator
  /// access) to stamp ts_us. ScenarioWorld binds this to its simulator's
  /// Now(); the binding is cleared when the world is destroyed.
  void SetClock(std::function<double()> now_us) { clock_ = std::move(now_us); }
  double now_us() const { return clock_ ? clock_() : 0.0; }

  /// Deterministic mode: record every wall-clock duration as 0 and never
  /// touch the steady clock, so trace bytes are reproducible.
  void set_deterministic(bool on) { deterministic_ = on; }
  bool deterministic() const { return deterministic_; }

  /// Process id stamped on subsequently recorded events. Convention:
  /// pid 0 = the parallel runner / coordinator, pid c+1 = cell c.
  void set_default_pid(int pid) { pid_ = pid; }
  int default_pid() const { return pid_; }

  void CompleteSpan(int lane, const char* cat, const char* name,
                    double ts_us, double dur_us, std::string args = {});
  void Instant(int lane, const char* cat, const char* name, double ts_us,
               std::string args = {});
  void Counter(int lane, const char* name, double ts_us, double value);

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() { events_.clear(); }

  /// Append another tracer's events verbatim (their pids were stamped at
  /// record time). Call in cell order, then SortMergedEvents().
  void AbsorbShard(const SpanTracer& shard);
  /// Stable sort by (ts, pid, tid) so the merged event order — and hence
  /// the exported bytes — is independent of worker count.
  void SortMergedEvents();

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with process/thread-name metadata records first.
  void WriteJson(std::ostream& out) const;
  /// WriteJson to `path`; returns false (and logs) on I/O failure.
  bool ExportJson(const std::string& path) const;

 private:
  std::function<double()> clock_;
  bool deterministic_ = false;
  int pid_ = 0;
  std::vector<TraceEvent> events_;
};

/// RAII span: stamps ts from the tracer clock at construction, measures
/// wall-clock duration (0 in deterministic mode), records on destruction
/// or Close(). A null tracer makes every member a no-op.
class SpanScope {
 public:
  SpanScope(SpanTracer* tracer, int lane, const char* cat, const char* name);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { Close(); }

  bool enabled() const { return tracer_ != nullptr; }
  /// Attach a rendered-JSON args object to the span being recorded.
  void set_args(std::string args) { args_ = std::move(args); }
  /// Record now instead of at scope exit.
  void Close();

 private:
  SpanTracer* tracer_;
  int lane_;
  const char* cat_;
  const char* name_;
  double begin_ts_us_ = 0.0;
  std::int64_t wall_begin_ns_ = 0;
  std::string args_;
};

}  // namespace flare
