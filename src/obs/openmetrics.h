// Prometheus/OpenMetrics text exposition for MetricsSnapshot.
//
// The registry's dotted names ("cell3.player.stalls",
// "runner.barrier_wait_ms") are not valid Prometheus metric names, so the
// renderer (a) extracts a leading "cell<N>." prefix into a `cell="N"`
// label — one family per logical metric, one series per cell, which is
// what makes `flare_top`'s per-cell table a straight group-by — and
// (b) sanitizes the rest into `flare_<name>` ([a-zA-Z0-9_], '.' -> '_').
//
// Kinds map as: counters -> `<family>_total` counter series; gauges ->
// gauge series (NaN values are omitted — NaN has no useful meaning to an
// alerting rule and some scrapers reject it); histograms -> classic
// `_bucket`/`_sum`/`_count` series plus a companion
// `<family>_quantile{quantile="0.5|0.95|0.99"}` gauge family carrying the
// registry's interpolated quantiles (omitted while the histogram is
// empty, where Quantile() is NaN).
//
// Pure functions over plain data: unit-testable with golden text, no
// sockets involved.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace flare {

/// Escape a label value per the text exposition rules:
/// `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
std::string OpenMetricsEscapeLabel(std::string_view value);

/// Sanitize one dotted metric name (cell prefix already stripped) into a
/// legal exposition name: "flare_" + name with every character outside
/// [a-zA-Z0-9_] replaced by '_'.
std::string OpenMetricsName(std::string_view dotted);

/// "cell<N>.rest" -> {family: "rest", cell: "N"}; anything else keeps the
/// whole name and an empty cell label.
struct OpenMetricsSeries {
  std::string family;  // dotted name without the cell prefix
  std::string cell;    // decimal cell index, or empty
};
OpenMetricsSeries SplitCellPrefix(std::string_view name);

/// Render a whole snapshot as exposition text. No trailing "# EOF" —
/// the telemetry server appends its own self-metrics and the terminator.
void RenderOpenMetrics(const MetricsSnapshot& snapshot, std::string* out);
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

}  // namespace flare
