// Live telemetry plane: opt-in background HTTP/1.1 exposition server.
//
// Endpoints:
//   GET /metrics  - Prometheus/OpenMetrics text rendered from the most
//                   recently published MetricsSnapshot plus the server's
//                   own counters (scrapes, events published/dropped).
//   GET /healthz  - JSON run health: 200 while every shard's
//                   RunHealthMonitor is clean, 503 once any watchdog
//                   warning has latched (or before the first publish),
//                   with epoch progress and wall-clock rates.
//   GET /events   - chunked NDJSON live tail of flight-recorder events.
//
// Isolation contract: the server owns one background thread running an
// EpollLoop (src/netio); the simulation side only ever calls Publish()
// and PublishEvents(), which copy data under a mutex / into a bounded
// drop-oldest queue and return. Nothing here can block an epoch barrier:
// a slow or stalled /events client fills its per-connection buffer, after
// which its events are dropped and counted (exported as
// flare_telemetry_events_dropped_total) — the run never waits. The
// server never writes back into any simulation state, so run bytes are
// identical with telemetry on or off (tests/determinism_test.cpp holds
// the plane to this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace flare {

/// One consistent view of the run, taken at an epoch barrier by
/// TelemetryPublisher and handed to the server whole.
struct TelemetrySnapshot {
  double sim_time_s = 0.0;
  double duration_s = 0.0;
  std::uint64_t epochs = 0;
  /// Wall-clock barrier rate and sim-seconds-per-wall-second since the
  /// previous publish (0 until two publishes exist).
  double epoch_rate_hz = 0.0;
  double sim_speedup = 0.0;
  int cells = 0;
  int workers = 0;
  bool healthy = true;
  std::uint64_t warnings = 0;
  std::vector<int> unhealthy_cells;
  std::string scenario;
  /// Merged registry view: coordinator metrics unprefixed, shard metrics
  /// under "cell<N>." — the same shape as the end-of-run export.
  MetricsSnapshot metrics;
};

class TelemetryServer {
 public:
  struct Options {
    /// Loopback by default: this is an operator's scrape port, not a
    /// public service.
    std::string bind_address = "127.0.0.1";
    /// 0 picks an ephemeral port; read the real one from port().
    std::uint16_t port = 0;
    /// Central pending-event queue (drop-oldest past this).
    std::size_t event_queue_capacity = 1024;
    /// Per-/events-connection outbox cap; a subscriber whose buffer is
    /// full loses events (counted) instead of growing memory.
    std::size_t connection_buffer_limit = 256 * 1024;
  };

  TelemetryServer();
  explicit TelemetryServer(Options options);
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Bind + listen + spawn the IO thread. False when the port cannot be
  /// bound (the server stays inert; Publish calls are cheap no-ops).
  bool Start();
  /// Graceful shutdown: closes every connection (subscribers get the
  /// terminal chunk) and joins the IO thread. Idempotent.
  void Stop();
  bool running() const;
  /// Bound port once Start() succeeded (resolves port 0).
  std::uint16_t port() const;

  /// Replace the served snapshot. Thread-safe, non-blocking (one mutex'd
  /// move); called from the simulation thread at epoch barriers.
  void Publish(TelemetrySnapshot snapshot);
  /// Append NDJSON event lines (each a complete line, no trailing
  /// newline) for the /events tail. Thread-safe; overflow drops the
  /// oldest queued lines and counts them.
  void PublishEvents(std::vector<std::string> lines);

  std::uint64_t scrapes() const;
  std::uint64_t events_published() const;
  std::uint64_t events_dropped() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Render the /healthz JSON body (separately testable).
std::string RenderHealthJson(const TelemetrySnapshot& snapshot,
                             bool have_snapshot);

}  // namespace flare
