// Periodic, non-perturbing bridge from the run's observers to the
// telemetry server.
//
// The publisher is invoked at epoch barriers (ParallelRunner barrier
// hook in multi-cell runs, a BAI-periodic simulator event in single-cell
// runs). At a barrier every shard is quiescent and the coordinator
// thread owns all of them, so reading shard observers needs no locks —
// the barrier join is the happens-before edge. Everything published is a
// *copy* (MetricsSnapshot, rendered NDJSON strings): nothing the server
// thread touches aliases live simulation state, and the publisher never
// writes into any registry or engine, so run bytes are identical with
// telemetry on or off.
//
// Cost when disabled: MaybePublish is a single null check (no clock
// read) — bench_optimizer's BM_TelemetryOverhead holds it to the same
// order as the disabled flight-recorder path. When enabled but not yet
// due, the cost is one steady_clock read.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/telemetry_server.h"
#include "obs/watchdog.h"

namespace flare {

/// Read-only view of one cell shard's observers (any may be null).
struct TelemetryShardView {
  const MetricsRegistry* metrics = nullptr;
  const QoeAnalytics* qoe = nullptr;
  const RunHealthMonitor* health = nullptr;
  const FlightRecorder* flight = nullptr;
  /// Prefix the shard registry's metric names get in the snapshot
  /// ("cell<N>." in multi-cell runs, "" single-cell — matching the
  /// end-of-run merge).
  std::string metrics_prefix;
};

class TelemetryPublisher {
 public:
  /// `server` may be null (telemetry disabled; every call is a no-op
  /// branch). `interval_ms` gates publishes on *wall* clock: barriers
  /// fire far faster than an operator can read, and wall gating keeps
  /// the cost independent of simulated-time scale.
  TelemetryPublisher(TelemetryServer* server, double interval_ms);

  void ConfigureRun(std::string scenario, double duration_s, int cells,
                    int workers);
  /// Coordinator-owned registry absorbed unprefixed (runner metrics in
  /// multi-cell runs). May be null.
  void SetCoordinatorMetrics(const MetricsRegistry* metrics) {
    coordinator_metrics_ = metrics;
  }
  /// Register one shard; `cell` stamps the qoe.* gauges and flight
  /// events. Call once per cell before the run starts.
  void AddShard(TelemetryShardView shard, int cell);

  bool enabled() const { return server_ != nullptr; }

  /// The barrier hook: publish if the wall interval elapsed. Inline so
  /// the disabled path is visibly one predicted branch.
  void MaybePublish(double sim_time_s) {
    if (server_ == nullptr) return;
    if (std::chrono::steady_clock::now() < next_due_) return;
    PublishNow(sim_time_s);
  }
  /// Unconditional publish (final state after the run completes).
  void PublishNow(double sim_time_s);

 private:
  struct Shard {
    TelemetryShardView view;
    int cell = 0;
    std::uint64_t next_event_seq = 0;
  };

  TelemetryServer* server_;
  std::chrono::steady_clock::duration interval_;
  std::chrono::steady_clock::time_point next_due_;

  std::string scenario_;
  double duration_s_ = 0.0;
  int cells_ = 0;
  int workers_ = 0;
  const MetricsRegistry* coordinator_metrics_ = nullptr;
  std::vector<Shard> shards_;

  // Rate bookkeeping between publishes.
  bool have_last_ = false;
  std::chrono::steady_clock::time_point last_publish_;
  std::uint64_t last_epochs_ = 0;
  double last_sim_time_s_ = 0.0;
  std::uint64_t publishes_ = 0;
};

/// Render one flight event as an NDJSON object (no trailing newline);
/// shared by the publisher and its tests.
std::string RenderFlightEventNdjson(const FlightEvent& event);

}  // namespace flare
