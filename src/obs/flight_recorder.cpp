#include "obs/flight_recorder.h"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <ostream>

#include "obs/span_trace.h"
#include "util/csv.h"

namespace flare {
namespace {

bool EventOrder(const FlightEvent& a, const FlightEvent& b) {
  if (a.t_s != b.t_s) return a.t_s < b.t_s;
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.seq < b.seq;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? kDefaultCapacity : capacity) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(double t_s, const char* kind, FlowId flow,
                            int client, double value, std::string args) {
  FlightEvent event;
  event.t_s = t_s;
  event.cell = cell_;
  event.seq = recorded_++;
  event.kind = kind != nullptr ? kind : "";
  event.flow = flow;
  event.client = client;
  event.value = value;
  event.args = std::move(args);
  if (merged_ || ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

void FlightRecorder::TriggerSnapshot(const char* reason, double t_s) {
  if (triggered_) return;
  triggered_ = true;
  trigger_reason_ = reason != nullptr ? reason : "";
  trigger_t_s_ = t_s;
  trigger_cell_ = cell_;
  snapshot_ = RecentEvents();
}

std::vector<FlightEvent> FlightRecorder::RecentEvents() const {
  std::vector<FlightEvent> events;
  events.reserve(ring_.size());
  if (merged_ || ring_.size() < capacity_) {
    events = ring_;
    return events;
  }
  // Full ring: next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return events;
}

std::uint64_t FlightRecorder::CollectEventsSince(
    std::uint64_t from_seq, int cell, std::vector<FlightEvent>* out) const {
  std::uint64_t next_seq = from_seq;
  for (FlightEvent event : RecentEvents()) {
    if (event.seq < from_seq) continue;
    event.cell = cell;
    if (event.seq + 1 > next_seq) next_seq = event.seq + 1;
    out->push_back(std::move(event));
  }
  return next_seq;
}

void FlightRecorder::AbsorbShard(const FlightRecorder& shard, int cell) {
  merged_ = true;
  for (FlightEvent event : shard.RecentEvents()) {
    event.cell = cell;
    ring_.push_back(std::move(event));
  }
  recorded_ += shard.recorded_;
  dropped_ += shard.dropped_;
  if (shard.triggered_) {
    const bool adopt =
        !triggered_ || shard.trigger_t_s_ < trigger_t_s_ ||
        (shard.trigger_t_s_ == trigger_t_s_ && cell < trigger_cell_);
    if (adopt) {
      triggered_ = true;
      trigger_reason_ = shard.trigger_reason_;
      trigger_t_s_ = shard.trigger_t_s_;
      trigger_cell_ = cell;
    }
    for (FlightEvent event : shard.snapshot_) {
      event.cell = cell;
      snapshot_.push_back(std::move(event));
    }
  }
}

void FlightRecorder::SortMergedEvents() {
  std::stable_sort(ring_.begin(), ring_.end(), EventOrder);
  std::stable_sort(snapshot_.begin(), snapshot_.end(), EventOrder);
}

void FlightRecorder::WriteEventJson(std::ostream& out,
                                    const FlightEvent& event) const {
  out << "{\"t_s\": " << JsonNumber(event.t_s) << ", \"cell\": " << event.cell
      << ", \"seq\": " << event.seq << ", \"kind\": " << JsonQuote(event.kind);
  if (event.flow != kInvalidFlow) out << ", \"flow\": " << event.flow;
  if (event.client >= 0) out << ", \"client\": " << event.client;
  out << ", \"value\": " << JsonNumber(event.value);
  if (!event.args.empty()) out << ", \"args\": " << event.args;
  out << '}';
}

void FlightRecorder::WriteJson(std::ostream& out,
                               const std::string& reason) const {
  out << "{\"reason\": " << JsonQuote(reason) << ",\n\"trigger\": ";
  if (triggered_) {
    out << "{\"reason\": " << JsonQuote(trigger_reason_)
        << ", \"t_s\": " << JsonNumber(trigger_t_s_)
        << ", \"cell\": " << trigger_cell_ << '}';
  } else {
    out << "null";
  }
  out << ",\n\"capacity\": " << capacity_ << ", \"recorded\": " << recorded_
      << ", \"dropped\": " << dropped_ << ",\n\"snapshot\": [";
  bool first = true;
  for (const FlightEvent& event : snapshot_) {
    out << (first ? "\n  " : ",\n  ");
    first = false;
    WriteEventJson(out, event);
  }
  out << "\n],\n\"recent\": [";
  first = true;
  for (const FlightEvent& event : RecentEvents()) {
    out << (first ? "\n  " : ",\n  ");
    first = false;
    WriteEventJson(out, event);
  }
  out << "\n]}\n";
}

bool FlightRecorder::DumpPostmortem(const std::string& path,
                                    const std::string& reason) const {
  std::ofstream out(path);
  if (!out) return false;
  WriteJson(out, reason);
  return static_cast<bool>(out);
}

namespace {

const FlightRecorder* g_signal_recorder = nullptr;
std::string g_signal_path;
volatile std::sig_atomic_t g_signal_dumped = 0;

void FatalSignalHandler(int signum) {
  if (g_signal_dumped == 0 && g_signal_recorder != nullptr) {
    g_signal_dumped = 1;
    g_signal_recorder->DumpPostmortem(
        g_signal_path, "fatal-signal:" + std::to_string(signum));
  }
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}

}  // namespace

void InstallFatalSignalPostmortem(const FlightRecorder* recorder,
                                  std::string path) {
  g_signal_recorder = recorder;
  g_signal_path = std::move(path);
  const auto handler = recorder != nullptr ? FatalSignalHandler : SIG_DFL;
  std::signal(SIGSEGV, handler);
  std::signal(SIGABRT, handler);
  std::signal(SIGFPE, handler);
}

}  // namespace flare
