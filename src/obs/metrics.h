// Cell-wide metrics registry.
//
// Every layer of the system (simulator core, eNodeB MAC, OneAPI control
// plane, HAS players) exposes counters, gauges and fixed-bucket histograms
// through one registry so a run can be summarized — and compared across
// PRs — from a single structured export (JSON or CSV).
//
// Cost model: instrumented components hold *handles* by value, resolved
// once when a registry is attached. A default-constructed handle carries a
// null pointer and every operation compiles to a single well-predicted
// branch, so an uninstrumented run pays effectively nothing (verified by
// bench_optimizer's BM_ObsOverhead). The instruments themselves are plain
// non-atomic fields — the simulator is single-threaded — but the API keeps
// each instrument independent (no shared mutable export state on the hot
// path), so swapping the fields for atomics is a local change if a
// multi-threaded driver ever needs it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace flare {

/// Monotonically increasing event count (RBs granted, stalls, ...).
class Counter {
 public:
  void Add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written instantaneous value (queue depth, buffer level, ...).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

struct HistogramSnapshot;

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the
/// finite buckets; one overflow bucket (+inf) is implicit.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  /// Quantile estimate with linear interpolation inside the containing
  /// bucket (Prometheus `histogram_quantile` semantics). The first finite
  /// bucket interpolates from 0; a quantile landing in the overflow
  /// bucket clamps to the largest finite bound. Returns NaN when empty
  /// (JSON export renders it as null) and Mean() when the histogram has
  /// no finite bounds. `q` is clamped to [0, 1].
  double Quantile(double q) const;
  /// Fold another histogram's observations into this one. Both must share
  /// the same bucket bounds (merging shards created from one config).
  void MergeFrom(const Histogram& other);
  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative count of observations <= bounds()[i]; the final entry is
  /// the overflow bucket and equals count().
  std::vector<std::uint64_t> CumulativeCounts() const;
  /// Detached plain-data copy (see MetricsSnapshot).
  HistogramSnapshot Snapshot() const;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry;

/// Plain-data copy of one histogram, detached from the live instrument.
struct HistogramSnapshot {
  std::vector<double> bounds;
  /// Per-bucket counts, bounds.size() + 1 with the overflow bucket last
  /// (same layout as the live Histogram).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;

  double Mean() const;
  /// Bit-identical to Histogram::Quantile (both call one shared
  /// implementation), so exports rendered from a snapshot match exports
  /// rendered from the live registry byte for byte.
  double Quantile(double q) const;
  std::vector<std::uint64_t> CumulativeCounts() const;
};

/// Point-in-time copy of a whole registry (or several, via AbsorbFrom):
/// the read-path synchronization story for concurrent export. Live
/// instruments are only ever touched by their owning event domain; a
/// snapshot is taken at an epoch barrier (or any other quiescent point)
/// on the coordinator thread and then handed to readers — the telemetry
/// server serves /metrics from its latest snapshot under its own mutex,
/// and the end-of-run JSON export renders from a snapshot too, so both
/// paths share one renderer and one consistency model.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Fold a registry in under `prefix` + name, MergeFrom semantics
  /// (counters add, gauges overwrite, histograms fold when bounds match).
  void AbsorbFrom(const MetricsRegistry& registry,
                  const std::string& prefix = {});
  /// Same JSON bytes MetricsRegistry::WriteJson has always produced.
  void WriteJson(std::ostream& out) const;
};

/// Name-keyed instrument store. Instruments live as long as the registry;
/// the node-based maps keep their addresses stable, so handles resolved at
/// attach time never dangle while the registry exists.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Re-requesting a name returns the same
  /// instrument, so independent components may share one (e.g. two cells
  /// accumulating into "cell.rbs_used").
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` are used only on first creation; later calls with the same
  /// name ignore them.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Copy every instrument of `other` into this registry under
  /// `prefix` + name (counters add, gauges overwrite, histograms fold).
  /// The sharded runtime gives each event domain a private registry and
  /// merges them post-run under "cell<N>." prefixes, so the combined
  /// export is identical whether the domains ran serially or in parallel.
  void MergeFrom(const MetricsRegistry& other, const std::string& prefix);

  /// Detach a point-in-time copy of every instrument. Call from the
  /// thread that owns the registry (or at an epoch barrier); the returned
  /// value is independent data that may cross threads freely.
  MetricsSnapshot Snapshot() const;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  /// Renders via Snapshot() — one renderer for live and snapshotted data.
  void WriteJson(std::ostream& out) const;
  /// Convenience file form; returns false if the file cannot be opened.
  bool ExportJson(const std::string& path) const;
  /// Flat CSV (metric,kind,field,value), reusing util/csv.h.
  bool ExportCsv(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// --- Zero-cost-when-disabled handles ---------------------------------------
// Components store these by value and call them unconditionally; the null
// default makes every call a no-op until a registry is attached.

class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* counter) : counter_(counter) {}
  void Add(std::uint64_t delta = 1) {
    if (counter_ != nullptr) counter_->Add(delta);
  }
  bool enabled() const { return counter_ != nullptr; }

 private:
  Counter* counter_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* gauge) : gauge_(gauge) {}
  void Set(double value) {
    if (gauge_ != nullptr) gauge_->Set(value);
  }
  bool enabled() const { return gauge_ != nullptr; }

 private:
  Gauge* gauge_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* histogram) : histogram_(histogram) {}
  void Observe(double value) {
    if (histogram_ != nullptr) histogram_->Observe(value);
  }
  bool enabled() const { return histogram_ != nullptr; }

 private:
  Histogram* histogram_ = nullptr;
};

/// Resolve a handle against an optional registry: null registry (the
/// disabled case) yields a null, no-op handle.
CounterHandle MakeCounterHandle(MetricsRegistry* registry,
                                const std::string& name);
GaugeHandle MakeGaugeHandle(MetricsRegistry* registry,
                            const std::string& name);
HistogramHandle MakeHistogramHandle(MetricsRegistry* registry,
                                    const std::string& name,
                                    std::vector<double> bounds);

}  // namespace flare
