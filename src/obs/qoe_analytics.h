// Online per-session QoE analytics: the third observability tier.
//
// The paper's evaluation (Figs. 6-12) is phrased entirely in per-session
// QoE terms — average bitrate, bitrate-switch instability, stall count and
// ratio, startup delay, and Jain fairness across the video flows of a cell
// — while the first two tiers (MetricsRegistry counters/histograms and the
// per-BAI trace) only expose raw events. This engine ingests player and
// controller hooks as they happen and keeps streaming aggregators per
// session, so every run exports paper-comparable QoE without each bench
// recomputing it ad hoc.
//
// Sharding and determinism follow the MetricsRegistry model: one engine
// per EventDomain (cell), no locking, merged post-run in cell order via
// AbsorbShard. All state lives in ordered maps keyed (cell, session), so
// WriteJson output is byte-identical for any worker count.
//
// The composite score mirrors has/metrics.h QoeScore (Yin et al.):
//   QoE = (sum q(R_k) - lambda * sum |q(R_k) - q(R_{k-1})|) / K
//         - mu * rebuffer_s / playtime_s,   q(R) = R in Mbps,
// with playtime = played_s + stall_s. obs/ cannot depend on has/, so the
// weights are duplicated here (same defaults) and the scenario layer is
// responsible for keeping them in sync when it overrides either.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lte/types.h"

namespace flare {

/// Mirror of has/QoeWeights (obs/ cannot include has/).
struct QoeEngineWeights {
  double lambda_switch = 1.0;
  double mu_rebuffer = 8.0;
};

/// Where a tracked session came from; exported as a string so runs under
/// churn can split admitted-dynamic QoE from the static population.
enum class QoeSessionOrigin { kStaticVideo, kConventional, kDynamicVideo };

const char* QoeSessionOriginName(QoeSessionOrigin origin);

/// Point-in-time aggregates for the live telemetry plane. Same semantics
/// as the end-of-run summary: averages and fairness are over sessions
/// that played at least one segment.
struct QoeLiveSummary {
  std::uint64_t sessions = 0;
  std::uint64_t played = 0;
  double avg_bitrate_bps = 0.0;
  double jain_avg_bitrate = 1.0;
  double avg_qoe = 0.0;
  double stall_ratio = 0.0;
  std::uint64_t stalls = 0;
  std::uint64_t switches = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  double blocking_probability = 0.0;
};

struct QoeSessionStats {
  int cell = 0;
  int session = -1;
  FlowId flow = kInvalidFlow;
  QoeSessionOrigin origin = QoeSessionOrigin::kStaticVideo;
  double start_s = 0.0;
  bool ended = false;
  double end_s = 0.0;
  double played_s = 0.0;
  /// Time from session start to first frame; < 0 until playout starts.
  double startup_delay_s = -1.0;
  std::uint64_t segments = 0;
  /// Media seconds fetched (sum of segment durations).
  double media_s = 0.0;
  double bitrate_sum_bps = 0.0;
  double last_bitrate_bps = -1.0;
  std::uint64_t switches = 0;
  /// Streaming terms of the Yin et al. score, in Mbps.
  double quality_sum = 0.0;
  double switch_magnitude_sum = 0.0;
  std::uint64_t stalls = 0;
  double stall_s = 0.0;
  /// Timestamp of the open stall edge; < 0 when not stalled.
  double active_stall_begin_s = -1.0;

  double AvgBitrateBps() const;
  /// stall / (played + stall); 0 when the session never played.
  double StallRatio() const;
  /// Composite score; only meaningful once segments > 0 (else 0).
  double Qoe(const QoeEngineWeights& weights) const;
};

class QoeAnalytics {
 public:
  explicit QoeAnalytics(QoeEngineWeights weights = {});

  const QoeEngineWeights& weights() const { return weights_; }
  /// Cell tag stamped on all subsequently recorded state (shard mode).
  void set_cell(int cell) { cell_ = cell; }

  // --- Session lifecycle hooks (driven by the scenario layer/player) ---
  void StartSession(int session, FlowId flow, double t_s,
                    QoeSessionOrigin origin);
  void OnPlayoutStart(int session, double t_s);
  void OnSegment(int session, double bitrate_bps, double duration_s);
  void OnStallBegin(int session, double t_s);
  void OnStallEnd(int session, double t_s);
  /// Close the session; an open stall is accounted up to `t_s`.
  void EndSession(int session, double t_s, double played_s);

  // --- Cell-level feeds ---
  /// Admission verdict for a dynamic session (true = admitted).
  void OnAdmissionVerdict(bool admitted);
  /// An enforced rung change, tagged with its DecisionCauseName(). The
  /// cause arrives as a string so obs/ stays independent of core/.
  void OnRungChange(const char* cause);

  // --- Post-run merge (multi-cell), MetricsRegistry::MergeFrom-style ---
  /// Fold a shard's sessions and cell aggregates in, restamping them with
  /// `cell`. Deterministic given a fixed absorb order.
  void AbsorbShard(const QoeAnalytics& shard, int cell);

  // --- Export ---
  /// `qoe` section of the metrics JSON: per-session rows in (cell,
  /// session) order, per-cell aggregates, and a run summary. All numbers
  /// go through JsonNumber so the bytes are deterministic.
  void WriteJson(std::ostream& out) const;
  /// One CSV row per session; false if the file cannot be opened.
  bool ExportCsv(const std::string& path) const;

  // --- Introspection (tests, result plumbing, live telemetry) ---
  /// Read-only mid-run aggregates across every tracked session. Called
  /// at epoch barriers by the telemetry publisher; never mutates, so a
  /// run's bytes are identical with or without telemetry attached.
  QoeLiveSummary LiveSummary() const;
  const QoeSessionStats* FindSession(int cell, int session) const;
  std::size_t session_count() const { return sessions_.size(); }
  std::uint64_t admitted() const;
  std::uint64_t blocked() const;

 private:
  struct CellAggregates {
    std::uint64_t admitted = 0;
    std::uint64_t blocked = 0;
    /// Enforced rung changes by DecisionCauseName(), ordered by name.
    std::map<std::string, std::uint64_t> rung_change_causes;
  };

  QoeSessionStats* Session(int session);
  void WriteAggregateJson(std::ostream& out,
                          const std::vector<const QoeSessionStats*>& sessions,
                          const CellAggregates& agg) const;

  QoeEngineWeights weights_;
  int cell_ = 0;
  std::map<std::pair<int, int>, QoeSessionStats> sessions_;
  std::map<int, CellAggregates> cells_;
};

}  // namespace flare
