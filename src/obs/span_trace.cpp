#include "obs/span_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <tuple>
#include <utility>

#include "util/logging.h"

namespace flare {
namespace {

/// Microsecond timestamps printed as fixed-point with ns precision —
/// %.6g would collapse distinct timestamps past 100 s of simulated time.
std::string FormatMicros(double us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

const char* LaneName(int lane) {
  switch (lane) {
    case kLaneControl:
      return "control";
    case kLaneMac:
      return "mac";
    case kLanePlayer:
      return "player";
    case kLaneRunner:
      return "runner";
    default:
      return "lane";
  }
}

std::string ProcessName(int pid) {
  if (pid == 0) return "runner";
  return "cell" + std::to_string(pid - 1);
}

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void WriteCommonFields(std::ostream& out, const TraceEvent& e) {
  out << "\"ts\":" << FormatMicros(e.ts_us) << ",\"pid\":" << e.pid
      << ",\"tid\":" << e.tid;
}

}  // namespace

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void SpanTracer::CompleteSpan(int lane, const char* cat, const char* name,
                              double ts_us, double dur_us, std::string args) {
  TraceEvent e;
  e.ts_us = ts_us;
  e.dur_us = deterministic_ ? 0.0 : dur_us;
  e.ph = 'X';
  e.pid = pid_;
  e.tid = lane;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void SpanTracer::Instant(int lane, const char* cat, const char* name,
                         double ts_us, std::string args) {
  TraceEvent e;
  e.ts_us = ts_us;
  e.ph = 'i';
  e.pid = pid_;
  e.tid = lane;
  e.cat = cat;
  e.name = name;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void SpanTracer::Counter(int lane, const char* name, double ts_us,
                         double value) {
  TraceEvent e;
  e.ts_us = ts_us;
  e.ph = 'C';
  e.pid = pid_;
  e.tid = lane;
  e.cat = "counter";
  e.name = name;
  e.value = value;
  events_.push_back(std::move(e));
}

void SpanTracer::AbsorbShard(const SpanTracer& shard) {
  events_.insert(events_.end(), shard.events_.begin(), shard.events_.end());
}

void SpanTracer::SortMergedEvents() {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.ts_us, a.pid, a.tid) <
                            std::tie(b.ts_us, b.pid, b.tid);
                   });
}

void SpanTracer::WriteJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };

  // Metadata first: name each process (cell) and lane so Perfetto shows
  // "cell0 / control" instead of bare pid/tid numbers.
  std::set<int> pids;
  std::set<std::pair<int, int>> lanes;
  for (const TraceEvent& e : events_) {
    pids.insert(e.pid);
    lanes.insert({e.pid, e.tid});
  }
  for (int pid : pids) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":" << JsonQuote(ProcessName(pid))
        << "}}";
  }
  for (const auto& [pid, tid] : lanes) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":"
        << JsonQuote(LaneName(tid)) << "}}";
  }

  for (const TraceEvent& e : events_) {
    sep();
    out << "{\"name\":" << JsonQuote(e.name) << ",\"cat\":" << JsonQuote(e.cat)
        << ",\"ph\":\"" << e.ph << "\",";
    WriteCommonFields(out, e);
    switch (e.ph) {
      case 'X':
        out << ",\"dur\":" << FormatMicros(e.dur_us);
        if (!e.args.empty()) out << ",\"args\":" << e.args;
        break;
      case 'i':
        out << ",\"s\":\"t\"";
        if (!e.args.empty()) out << ",\"args\":" << e.args;
        break;
      case 'C':
        out << ",\"args\":{\"value\":" << FormatMicros(e.value) << "}";
        break;
      default:
        break;
    }
    out << "}";
  }
  out << "]}\n";
}

bool SpanTracer::ExportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    FLOG_WARN << "SpanTracer: cannot open " << path;
    return false;
  }
  WriteJson(out);
  out.flush();
  if (!out.good()) {
    FLOG_WARN << "SpanTracer: short write to " << path;
    return false;
  }
  return true;
}

SpanScope::SpanScope(SpanTracer* tracer, int lane, const char* cat,
                     const char* name)
    : tracer_(tracer), lane_(lane), cat_(cat), name_(name) {
  if (tracer_ == nullptr) return;
  begin_ts_us_ = tracer_->now_us();
  if (!tracer_->deterministic()) wall_begin_ns_ = SteadyNowNs();
}

void SpanScope::Close() {
  if (tracer_ == nullptr) return;
  double dur_us = 0.0;
  if (!tracer_->deterministic()) {
    dur_us = static_cast<double>(SteadyNowNs() - wall_begin_ns_) / 1000.0;
  }
  tracer_->CompleteSpan(lane_, cat_, name_, begin_ts_us_, dur_us,
                        std::move(args_));
  tracer_ = nullptr;
}

}  // namespace flare
