#include "obs/openmetrics.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/csv.h"

namespace flare {

std::string OpenMetricsEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string OpenMetricsName(std::string_view dotted) {
  std::string out = "flare_";
  out.reserve(out.size() + dotted.size());
  for (char c : dotted) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out += legal ? c : '_';
  }
  return out;
}

OpenMetricsSeries SplitCellPrefix(std::string_view name) {
  OpenMetricsSeries series;
  if (name.size() > 4 && name.compare(0, 4, "cell") == 0) {
    std::size_t i = 4;
    while (i < name.size() && name[i] >= '0' && name[i] <= '9') ++i;
    if (i > 4 && i < name.size() && name[i] == '.' && i + 1 < name.size()) {
      series.cell.assign(name.substr(4, i - 4));
      series.family.assign(name.substr(i + 1));
      return series;
    }
  }
  series.family.assign(name);
  return series;
}

namespace {

/// All series of one family, keyed by cell label (input order kept).
template <typename V>
using FamilyMap =
    std::map<std::string, std::vector<std::pair<std::string, V>>>;

template <typename M, typename V>
FamilyMap<V> GroupByFamily(const M& by_name) {
  FamilyMap<V> families;
  for (const auto& [name, value] : by_name) {
    OpenMetricsSeries series = SplitCellPrefix(name);
    families[series.family].emplace_back(std::move(series.cell), value);
  }
  return families;
}

void AppendHeader(std::string* out, const std::string& name,
                  const std::string& family_dotted, const char* type) {
  out->append("# HELP ").append(name).append(1, ' ');
  out->append(OpenMetricsEscapeLabel(family_dotted));
  out->append("\n# TYPE ").append(name).append(1, ' ').append(type);
  out->push_back('\n');
}

/// `{cell="N",extra}` (either part may be absent).
void AppendLabels(std::string* out, const std::string& cell,
                  const std::string& extra) {
  if (cell.empty() && extra.empty()) return;
  out->push_back('{');
  if (!cell.empty()) {
    out->append("cell=\"").append(OpenMetricsEscapeLabel(cell)).append("\"");
    if (!extra.empty()) out->push_back(',');
  }
  out->append(extra);
  out->push_back('}');
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& cell, const std::string& extra,
                  const std::string& value) {
  out->append(name);
  AppendLabels(out, cell, extra);
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}

}  // namespace

void RenderOpenMetrics(const MetricsSnapshot& snapshot, std::string* out) {
  for (const auto& [family, series] :
       GroupByFamily<decltype(snapshot.counters), std::uint64_t>(
           snapshot.counters)) {
    const std::string name = OpenMetricsName(family) + "_total";
    AppendHeader(out, name, family, "counter");
    for (const auto& [cell, value] : series) {
      AppendSample(out, name, cell, {}, std::to_string(value));
    }
  }

  for (const auto& [family, series] :
       GroupByFamily<decltype(snapshot.gauges), double>(snapshot.gauges)) {
    // A family whose every series is NaN disappears entirely.
    bool any = false;
    for (const auto& [cell, value] : series) any |= !std::isnan(value);
    if (!any) continue;
    const std::string name = OpenMetricsName(family);
    AppendHeader(out, name, family, "gauge");
    for (const auto& [cell, value] : series) {
      if (std::isnan(value)) continue;
      AppendSample(out, name, cell, {}, FormatNumber(value));
    }
  }

  for (const auto& [family, series] :
       GroupByFamily<decltype(snapshot.histograms), HistogramSnapshot>(
           snapshot.histograms)) {
    const std::string name = OpenMetricsName(family);
    AppendHeader(out, name, family, "histogram");
    for (const auto& [cell, hist] : series) {
      const std::vector<std::uint64_t> cumulative = hist.CumulativeCounts();
      for (std::size_t i = 0; i < cumulative.size(); ++i) {
        const std::string le =
            i < hist.bounds.size() ? FormatNumber(hist.bounds[i]) : "+Inf";
        AppendSample(out, name + "_bucket", cell, "le=\"" + le + "\"",
                     std::to_string(cumulative[i]));
      }
      AppendSample(out, name + "_sum", cell, {}, FormatNumber(hist.sum));
      AppendSample(out, name + "_count", cell, {},
                   std::to_string(hist.count));
    }
    // Companion quantile gauges (the registry's interpolated estimates);
    // empty histograms have NaN quantiles and contribute nothing.
    bool any = false;
    for (const auto& [cell, hist] : series) any |= hist.count > 0;
    if (!any) continue;
    const std::string qname = name + "_quantile";
    AppendHeader(out, qname, family + " quantiles", "gauge");
    for (const auto& [cell, hist] : series) {
      if (hist.count == 0) continue;
      for (const auto& [label, q] :
           {std::pair<const char*, double>{"0.5", 0.50},
            {"0.95", 0.95},
            {"0.99", 0.99}}) {
        AppendSample(out, qname, cell,
                     std::string("quantile=\"") + label + "\"",
                     FormatNumber(hist.Quantile(q)));
      }
    }
  }
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  RenderOpenMetrics(snapshot, &out);
  return out;
}

}  // namespace flare
