// Structured per-BAI trace of the FLARE control loop.
//
// The sink records three row families:
//  * one BaiTraceRow per video flow per BAI — the full decision context
//    (observed and smoothed bits/RB, the solver's recommended rung, the
//    hysteresis state, the enforced rung, the pushed GBR) plus the
//    BAI-level video_fraction / solve time, so rate-adaptation behaviour
//    can be audited flow-by-flow and interval-by-interval;
//  * per-TTI scheduler aggregates (RBs per phase, GBR credit shortfall),
//    folded into one TtiAggregateRow per flush period so a 600 s run emits
//    hundreds of rows, not hundreds of thousands;
//  * one PlayerSummary per video client at teardown (stalls, switches,
//    QoE), closing the loop from network decisions to viewer experience.
//
// Like the metrics handles, a null sink pointer disables everything; the
// producers (OneApiServer, Cell, scenario runner) check one pointer per
// record site.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lte/types.h"
#include "util/time.h"

namespace flare {

class MetricsRegistry;
class QoeAnalytics;
class RunHealthMonitor;

/// One row per video flow per BAI.
struct BaiTraceRow {
  double t_s = 0.0;
  /// Cell (event domain) the row came from; 0 in single-cell runs.
  int cell = 0;
  FlowId flow = kInvalidFlow;
  /// Raw e_u sample from this BAI's RB & Rate Trace window (or the nominal
  /// fallback when the flow was idle).
  double observed_bits_per_rb = 0.0;
  /// EWMA-smoothed estimate actually fed to the optimizer.
  double smoothed_bits_per_rb = 0.0;
  /// Solver recommendation L* before Algorithm 1's hysteresis.
  int recommended_level = 0;
  /// Consecutive-up counter after this BAI (0 unless an increase is
  /// pending adoption).
  int hysteresis_up = 0;
  /// Rung enforced on client and scheduler after the stability rule.
  int enforced_level = 0;
  double rate_bps = 0.0;
  double gbr_bps = 0.0;
  /// BAI-level context, repeated on each of the interval's rows.
  double video_fraction = 0.0;
  double solve_time_ms = 0.0;
  bool feasible = true;
  /// Stability-rule branch that produced enforced_level (DecisionCauseName
  /// string: "init", "hold", "solver-up", "hysteresis-adopted",
  /// "stability-cap", "capacity-down", "infeasible-fallback").
  std::string cause;
};

/// Scheduler aggregates over one flush period (default 1 s).
struct TtiAggregateRow {
  double t_s = 0.0;  // end of the aggregation period
  /// Cell (event domain) the row came from; 0 in single-cell runs.
  int cell = 0;
  std::uint64_t ttis = 0;
  std::uint64_t rbs_priority = 0;  // GBR / priority-set phase
  std::uint64_t rbs_shared = 0;    // PF / shared phase
  /// Mean unserved GBR credit (bytes still owed after the TTI) over the
  /// period — sustained positive values mean the cell cannot honour the
  /// GBRs the optimizer asked for.
  double mean_gbr_shortfall_bytes = 0.0;
};

/// End-of-run per-client summary.
struct PlayerSummary {
  /// Cell (event domain) the client streamed through; 0 single-cell.
  int cell = 0;
  int client = -1;
  FlowId flow = kInvalidFlow;
  double avg_bitrate_bps = 0.0;
  int switches = 0;
  int stalls = 0;
  double stall_s = 0.0;
  double qoe = 0.0;
  int segments = 0;
};

class BaiTraceSink {
 public:
  /// `tti_flush_period` controls TTI-aggregate granularity.
  explicit BaiTraceSink(SimTime tti_flush_period = kSecond);

  void RecordBai(const BaiTraceRow& row) { bai_rows_.push_back(row); }
  /// Accumulate one TTI's scheduler stats; emits an aggregate row each
  /// time `now` crosses a flush-period boundary.
  void RecordTti(SimTime now, int rbs_priority, int rbs_shared,
                 double gbr_shortfall_bytes);
  void RecordPlayer(const PlayerSummary& summary) {
    players_.push_back(summary);
  }
  /// Fold any partially accumulated TTI window into a final aggregate row
  /// (call once after the run).
  void Flush(SimTime now);

  /// Append every row of `shard`, stamping it with `cell` — the merge
  /// half of the sharded runtime: each event domain records into its own
  /// sink, and the coordinator absorbs the shards after the run. Call
  /// SortMergedRows() once after the last shard so the merged trace reads
  /// as one interleaved timeline.
  void AbsorbShard(const BaiTraceSink& shard, int cell);
  /// Deterministic global order: BAI rows by (t_s, cell, flow), TTI rows
  /// by (t_s, cell), players by (cell, client). Stable, so same-key rows
  /// keep shard order; the result is independent of absorb order and of
  /// how many worker threads produced the shards.
  void SortMergedRows();

  const std::vector<BaiTraceRow>& bai_rows() const { return bai_rows_; }
  const std::vector<TtiAggregateRow>& tti_rows() const { return tti_rows_; }
  const std::vector<PlayerSummary>& players() const { return players_; }

  /// BAI rows as CSV (header + one line per row; util/csv.h formatting).
  void WriteCsv(std::ostream& out) const;
  /// File form of WriteCsv. Returns false if unwritable.
  bool ExportCsv(const std::string& path) const;
  /// Full structured export: {"metrics": ..., "run_health": ...,
  /// "qoe": ..., "bai_trace": [...], "tti_aggregates": [...],
  /// "players": [...]}. `registry`, `health` and `qoe` may be null, in
  /// which case their sections are written as null.
  void WriteJson(std::ostream& out, const MetricsRegistry* registry,
                 const RunHealthMonitor* health = nullptr,
                 const QoeAnalytics* qoe = nullptr) const;
  bool ExportJson(const std::string& path,
                  const MetricsRegistry* registry = nullptr,
                  const RunHealthMonitor* health = nullptr,
                  const QoeAnalytics* qoe = nullptr) const;

 private:
  SimTime flush_period_;
  SimTime window_start_ = 0;
  TtiAggregateRow pending_;
  double pending_shortfall_sum_ = 0.0;

  std::vector<BaiTraceRow> bai_rows_;
  std::vector<TtiAggregateRow> tti_rows_;
  std::vector<PlayerSummary> players_;
};

}  // namespace flare
