#include "obs/watchdog.h"

#include <algorithm>
#include <ostream>
#include <tuple>
#include <utility>

#include "util/csv.h"

namespace flare {
namespace {

/// Advance a streak by one good/bad scan; returns true exactly when the
/// warning should fire (streak reaches `threshold` while armed). The
/// streak re-arms only after a good scan, so a long outage fires once.
bool Step(int& streak, bool& armed, bool bad, int threshold) {
  if (!bad) {
    streak = 0;
    armed = true;
    return false;
  }
  ++streak;
  if (armed && streak >= threshold) {
    armed = false;
    return true;
  }
  return false;
}

}  // namespace

RunHealthMonitor::RunHealthMonitor(const WatchdogConfig& config)
    : config_(config) {}

void RunHealthMonitor::SetObservers(MetricsRegistry* registry,
                                    SpanTracer* tracer,
                                    FlightRecorder* flight) {
  warnings_metric_ = MakeCounterHandle(registry, "health.warnings");
  tracer_ = tracer;
  flight_ = flight;
}

void RunHealthMonitor::Emit(double t_s, const char* kind, FlowId flow,
                            int client, double value, std::string detail) {
  HealthWarning w;
  w.t_s = t_s;
  w.cell = cell_;
  w.kind = kind;
  w.flow = flow;
  w.client = client;
  w.value = value;
  w.detail = std::move(detail);
  warnings_metric_.Add();
  if (tracer_ != nullptr) {
    std::string args = "{\"cell\":" + std::to_string(w.cell);
    if (w.flow != kInvalidFlow) args += ",\"flow\":" + std::to_string(w.flow);
    if (w.client >= 0) args += ",\"client\":" + std::to_string(w.client);
    args += ",\"value\":" + FormatNumber(w.value);
    args += ",\"detail\":" + JsonQuote(w.detail) + "}";
    tracer_->Instant(kLaneControl, "health", kind, t_s * 1e6,
                     std::move(args));
  }
  if (flight_ != nullptr) {
    // Record the warning itself, then latch the ring: the snapshot is the
    // pre-alarm context this recorder exists for.
    flight_->Record(t_s, "watchdog", w.flow, w.client, w.value,
                    "{\"kind\":" + JsonQuote(kind) +
                        ",\"detail\":" + JsonQuote(w.detail) + "}");
    flight_->TriggerSnapshot(kind, t_s);
  }
  warnings_.push_back(std::move(w));
}

void RunHealthMonitor::OnSolverResult(double t_s, bool feasible) {
  if (Step(infeasible_streak_, infeasible_armed_, !feasible,
           config_.infeasible_streak)) {
    Emit(t_s, "infeasible_streak", kInvalidFlow, -1,
         static_cast<double>(infeasible_streak_),
         "solver infeasible for " + std::to_string(infeasible_streak_) +
             " consecutive BAIs (cell over capacity at floor rungs)");
  }
}

void RunHealthMonitor::OnPlayerScan(double t_s, int client,
                                    double stall_s_delta) {
  Streak& s = stall_streaks_[client];
  if (Step(s.length, s.armed, stall_s_delta > 0.0, config_.stall_streak)) {
    Emit(t_s, "stall_streak", kInvalidFlow, client,
         static_cast<double>(s.length),
         "client " + std::to_string(client) + " stalled in " +
             std::to_string(s.length) + " consecutive BAIs");
  }
}

void RunHealthMonitor::OnGbrScan(double t_s, double shortfall_bytes,
                                 double bai_gbr_bytes) {
  const bool bad =
      bai_gbr_bytes > 0.0 &&
      shortfall_bytes > config_.gbr_shortfall_fraction * bai_gbr_bytes;
  if (Step(gbr_streak_, gbr_armed_, bad, config_.gbr_shortfall_streak)) {
    Emit(t_s, "gbr_shortfall", kInvalidFlow, -1, shortfall_bytes,
         "unspent GBR credit exceeded " +
             FormatNumber(config_.gbr_shortfall_fraction * 100.0) +
             "% of one BAI's promised bytes for " +
             std::to_string(gbr_streak_) + " consecutive BAIs");
  }
}

void RunHealthMonitor::OnFlowScan(double t_s, FlowId flow, bool backlogged,
                                  std::uint64_t tx_bytes_delta) {
  Streak& s = starved_streaks_[flow];
  if (Step(s.length, s.armed, backlogged && tx_bytes_delta == 0,
           config_.starved_flow_streak)) {
    Emit(t_s, "starved_flow", flow, -1, static_cast<double>(s.length),
         "backlogged data flow " + std::to_string(flow) +
             " served zero bytes for " + std::to_string(s.length) +
             " consecutive BAIs");
  }
}

void RunHealthMonitor::OnAdmissionScan(double t_s, std::uint64_t blocked_delta,
                                       std::uint64_t arrivals_delta) {
  if (arrivals_delta == 0) return;  // no evidence either way
  if (Step(blocking_streak_, blocking_armed_, blocked_delta > 0,
           config_.blocking_streak)) {
    Emit(t_s, "admission_blocking", kInvalidFlow, -1,
         static_cast<double>(blocking_streak_),
         "admission control rejected arrivals in " +
             std::to_string(blocking_streak_) +
             " consecutive BAIs with arrivals (sustained blocking)");
  }
}

void RunHealthMonitor::AbsorbShard(const RunHealthMonitor& shard, int cell) {
  for (HealthWarning w : shard.warnings_) {
    w.cell = cell;
    warnings_.push_back(std::move(w));
  }
}

void RunHealthMonitor::SortMergedWarnings() {
  std::stable_sort(warnings_.begin(), warnings_.end(),
                   [](const HealthWarning& a, const HealthWarning& b) {
                     return std::tie(a.t_s, a.cell, a.kind) <
                            std::tie(b.t_s, b.cell, b.kind);
                   });
}

void RunHealthMonitor::WriteJson(std::ostream& out) const {
  out << "{\"healthy\": " << (healthy() ? "true" : "false")
      << ", \"warnings\": [";
  for (std::size_t i = 0; i < warnings_.size(); ++i) {
    const HealthWarning& w = warnings_[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"t_s\": " << FormatNumber(w.t_s)
        << ", \"cell\": " << w.cell << ", \"kind\": " << JsonQuote(w.kind);
    if (w.flow != kInvalidFlow) out << ", \"flow\": " << w.flow;
    if (w.client >= 0) out << ", \"client\": " << w.client;
    out << ", \"value\": " << FormatNumber(w.value)
        << ", \"detail\": " << JsonQuote(w.detail) << '}';
  }
  out << "]}";
}

}  // namespace flare
