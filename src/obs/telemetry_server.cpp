#include "obs/telemetry_server.h"

#include <atomic>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "netio/event_loop.h"
#include "netio/tcp.h"
#include "obs/openmetrics.h"
#include "obs/span_trace.h"  // JsonQuote
#include "util/csv.h"        // JsonNumber

namespace flare {

std::string RenderHealthJson(const TelemetrySnapshot& snapshot,
                             bool have_snapshot) {
  std::ostringstream out;
  const char* status = !have_snapshot ? "starting"
                       : snapshot.healthy ? "ok"
                                          : "alarming";
  const double progress_pct =
      snapshot.duration_s > 0.0
          ? 100.0 * snapshot.sim_time_s / snapshot.duration_s
          : 0.0;
  out << "{\"status\": " << JsonQuote(status) << ", \"healthy\": "
      << (have_snapshot && snapshot.healthy ? "true" : "false")
      << ", \"scenario\": " << JsonQuote(snapshot.scenario)
      << ", \"sim_time_s\": " << JsonNumber(snapshot.sim_time_s)
      << ", \"duration_s\": " << JsonNumber(snapshot.duration_s)
      << ", \"progress_pct\": " << JsonNumber(progress_pct)
      << ", \"epochs\": " << snapshot.epochs
      << ", \"epoch_rate_hz\": " << JsonNumber(snapshot.epoch_rate_hz)
      << ", \"sim_speedup\": " << JsonNumber(snapshot.sim_speedup)
      << ", \"cells\": " << snapshot.cells
      << ", \"workers\": " << snapshot.workers
      << ", \"warnings\": " << snapshot.warnings << ", \"unhealthy_cells\": [";
  for (std::size_t i = 0; i < snapshot.unhealthy_cells.size(); ++i) {
    if (i > 0) out << ", ";
    out << snapshot.unhealthy_cells[i];
  }
  out << "]}";
  return out.str();
}

namespace {

struct ClientConn {
  explicit ClientConn(int fd) : conn(fd) {}
  TcpConnection conn;
  /// Subscribed to /events: stays open, receives chunks as they publish.
  bool streaming = false;
  /// Request already dispatched (further pipelined input is ignored).
  bool dispatched = false;
};

std::string ResponseHead(int status, const char* reason,
                         const char* content_type, std::size_t length) {
  std::string head = "HTTP/1.1 ";
  head += std::to_string(status);
  head += ' ';
  head += reason;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: ";
  head += std::to_string(length);
  head += "\r\nConnection: close\r\n\r\n";
  return head;
}

std::string Chunk(const std::string& line) {
  char size[16];
  std::snprintf(size, sizeof(size), "%zx", line.size() + 1);
  std::string chunk = size;
  chunk += "\r\n";
  chunk += line;
  chunk += "\n\r\n";
  return chunk;
}

}  // namespace

struct TelemetryServer::Impl {
  explicit Impl(Options opts) : options(std::move(opts)) {}

  Options options;
  EpollLoop loop;
  TcpListener listener;
  std::thread thread;
  bool started = false;

  // --- Simulation-facing state (any thread) -----------------------------
  std::mutex state_mu;
  TelemetrySnapshot latest;  // under state_mu
  bool have_snapshot = false;

  std::mutex events_mu;
  std::deque<std::string> pending_events;  // bounded, drop-oldest
  bool drain_scheduled = false;            // under events_mu

  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> events_published{0};
  std::atomic<std::uint64_t> events_dropped{0};
  std::atomic<std::uint64_t> connections{0};

  // --- Loop-thread-only state -------------------------------------------
  std::map<int, std::unique_ptr<ClientConn>> clients;

  void OnAccept();
  void OnClientIo(int fd, std::uint32_t events);
  void Dispatch(ClientConn& client);
  void RespondFull(ClientConn& client, int status, const char* reason,
                   const char* content_type, const std::string& body);
  std::string RenderMetricsBody();
  void UpdateInterest(ClientConn& client);
  void CloseClient(int fd);
  void DrainEvents();
  void ShutdownOnLoop();
};

void TelemetryServer::Impl::OnAccept() {
  for (;;) {
    const int fd = listener.Accept();
    if (fd < 0) return;
    connections.fetch_add(1, std::memory_order_relaxed);
    clients.emplace(fd, std::make_unique<ClientConn>(fd));
    loop.Watch(fd, EpollLoop::kReadable | EpollLoop::kError,
               [this, fd](std::uint32_t events) { OnClientIo(fd, events); });
  }
}

void TelemetryServer::Impl::OnClientIo(int fd, std::uint32_t events) {
  const auto it = clients.find(fd);
  if (it == clients.end()) return;
  ClientConn& client = *it->second;

  if ((events & EpollLoop::kError) != 0) {
    CloseClient(fd);
    return;
  }
  if ((events & EpollLoop::kReadable) != 0) {
    const IoStatus status = client.conn.ReadSome();
    if (status == IoStatus::kEof || status == IoStatus::kError) {
      CloseClient(fd);
      return;
    }
    if (!client.dispatched &&
        client.conn.inbox().find("\r\n\r\n") != std::string::npos) {
      Dispatch(client);
      if (clients.find(fd) == clients.end()) return;  // closed in dispatch
    }
  }
  if ((events & EpollLoop::kWritable) != 0) {
    if (client.conn.Flush() == IoStatus::kError) {
      CloseClient(fd);
      return;
    }
  }
  if (client.conn.FlushedAndDone()) {
    CloseClient(fd);
    return;
  }
  UpdateInterest(client);
}

void TelemetryServer::Impl::UpdateInterest(ClientConn& client) {
  std::uint32_t mask = EpollLoop::kReadable | EpollLoop::kError;
  if (client.conn.pending_bytes() > 0) mask |= EpollLoop::kWritable;
  const int fd = client.conn.fd();
  loop.Watch(fd, mask, [this, fd](std::uint32_t ev) { OnClientIo(fd, ev); });
}

void TelemetryServer::Impl::CloseClient(int fd) {
  const auto it = clients.find(fd);
  if (it == clients.end()) return;
  loop.Unwatch(fd);
  clients.erase(it);  // TcpConnection destructor closes the fd
}

std::string TelemetryServer::Impl::RenderMetricsBody() {
  std::string body;
  {
    std::lock_guard<std::mutex> lock(state_mu);
    if (have_snapshot) RenderOpenMetrics(latest.metrics, &body);
  }
  const auto self = [&body](const char* name, const char* help,
                            std::uint64_t value) {
    body += "# HELP ";
    body += name;
    body += ' ';
    body += help;
    body += "\n# TYPE ";
    body += name;
    body += " counter\n";
    body += name;
    body += ' ';
    body += std::to_string(value);
    body += '\n';
  };
  self("flare_telemetry_scrapes_total", "/metrics requests served",
       scrapes.load(std::memory_order_relaxed));
  self("flare_telemetry_events_published_total",
       "flight-recorder events fanned out to /events",
       events_published.load(std::memory_order_relaxed));
  self("flare_telemetry_events_dropped_total",
       "events dropped by the bounded queue or slow subscribers",
       events_dropped.load(std::memory_order_relaxed));
  self("flare_telemetry_connections_total", "connections accepted",
       connections.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(state_mu);
    body += "# HELP flare_run_info run identity\n";
    body += "# TYPE flare_run_info gauge\n";
    body += "flare_run_info{scenario=\"";
    body += OpenMetricsEscapeLabel(latest.scenario);
    body += "\"} 1\n";
  }
  body += "# EOF\n";
  return body;
}

void TelemetryServer::Impl::RespondFull(ClientConn& client, int status,
                                        const char* reason,
                                        const char* content_type,
                                        const std::string& body) {
  client.conn.Queue(ResponseHead(status, reason, content_type, body.size()));
  client.conn.Queue(body);
  client.conn.CloseAfterFlush();
  client.conn.Flush();
}

void TelemetryServer::Impl::Dispatch(ClientConn& client) {
  client.dispatched = true;
  const std::string& request = client.conn.inbox();
  const std::size_t line_end = request.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::istringstream in(request_line);
  std::string method, path, version;
  in >> method >> path >> version;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    RespondFull(client, 405, "Method Not Allowed", "text/plain",
                "only GET is supported\n");
  } else if (path == "/metrics") {
    scrapes.fetch_add(1, std::memory_order_relaxed);
    RespondFull(client, 200, "OK",
                "text/plain; version=0.0.4; charset=utf-8",
                RenderMetricsBody());
  } else if (path == "/healthz") {
    std::string body;
    bool ok = false;
    {
      std::lock_guard<std::mutex> lock(state_mu);
      ok = have_snapshot && latest.healthy;
      body = RenderHealthJson(latest, have_snapshot);
    }
    body += '\n';
    RespondFull(client, ok ? 200 : 503, ok ? "OK" : "Service Unavailable",
                "application/json", body);
  } else if (path == "/events") {
    client.streaming = true;
    client.conn.Queue(
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n"
        "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n");
    client.conn.Flush();
  } else {
    RespondFull(client, 404, "Not Found", "text/plain",
                "endpoints: /metrics /healthz /events\n");
  }
  UpdateInterest(client);
}

void TelemetryServer::Impl::DrainEvents() {
  std::deque<std::string> batch;
  {
    std::lock_guard<std::mutex> lock(events_mu);
    batch.swap(pending_events);
    drain_scheduled = false;
  }
  if (batch.empty()) return;
  for (auto& [fd, client] : clients) {
    if (!client->streaming) continue;
    for (const std::string& line : batch) {
      // A full buffer means this subscriber is not keeping up; losing
      // tail events here is the design — the run never waits for IO.
      if (client->conn.pending_bytes() + line.size() >
          options.connection_buffer_limit) {
        events_dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      client->conn.Queue(Chunk(line));
    }
    client->conn.Flush();
    UpdateInterest(*client);
  }
  events_published.fetch_add(batch.size(), std::memory_order_relaxed);
}

void TelemetryServer::Impl::ShutdownOnLoop() {
  for (auto& [fd, client] : clients) {
    if (client->streaming) {
      client->conn.Queue("0\r\n\r\n");  // terminal chunk
      client->conn.Flush();             // best effort
    }
    loop.Unwatch(fd);
  }
  clients.clear();
  loop.Unwatch(listener.fd());
  listener.Close();
}

TelemetryServer::TelemetryServer() : TelemetryServer(Options{}) {}

TelemetryServer::TelemetryServer(Options options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

TelemetryServer::~TelemetryServer() { Stop(); }

bool TelemetryServer::Start() {
  if (impl_->started) return true;
  if (!impl_->loop.ok()) return false;
  if (!impl_->listener.Listen(impl_->options.bind_address,
                              impl_->options.port)) {
    return false;
  }
  // Initial watch is registered before the loop thread starts, which is
  // the one other moment Watch() is legal off the loop thread.
  impl_->loop.Watch(impl_->listener.fd(),
                    EpollLoop::kReadable | EpollLoop::kError,
                    [impl = impl_.get()](std::uint32_t) {
                      impl->OnAccept();
                    });
  impl_->thread = std::thread([impl = impl_.get()] {
    impl->loop.Run();
    impl->ShutdownOnLoop();
  });
  impl_->started = true;
  return true;
}

void TelemetryServer::Stop() {
  if (!impl_->started) return;
  impl_->loop.Stop();
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->started = false;
}

bool TelemetryServer::running() const { return impl_->started; }

std::uint16_t TelemetryServer::port() const {
  return impl_->listener.bound_port();
}

void TelemetryServer::Publish(TelemetrySnapshot snapshot) {
  std::lock_guard<std::mutex> lock(impl_->state_mu);
  impl_->latest = std::move(snapshot);
  impl_->have_snapshot = true;
}

void TelemetryServer::PublishEvents(std::vector<std::string> lines) {
  if (lines.empty()) return;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(impl_->events_mu);
    for (std::string& line : lines) {
      impl_->pending_events.push_back(std::move(line));
    }
    while (impl_->pending_events.size() >
           impl_->options.event_queue_capacity) {
      impl_->pending_events.pop_front();
      impl_->events_dropped.fetch_add(1, std::memory_order_relaxed);
    }
    if (!impl_->drain_scheduled) {
      impl_->drain_scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    impl_->loop.Post([impl = impl_.get()] { impl->DrainEvents(); });
  }
}

std::uint64_t TelemetryServer::scrapes() const {
  return impl_->scrapes.load(std::memory_order_relaxed);
}
std::uint64_t TelemetryServer::events_published() const {
  return impl_->events_published.load(std::memory_order_relaxed);
}
std::uint64_t TelemetryServer::events_dropped() const {
  return impl_->events_dropped.load(std::memory_order_relaxed);
}

}  // namespace flare
