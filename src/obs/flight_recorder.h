// Black-box flight recorder: a bounded per-domain ring of recent
// structured events, dumped post-mortem when something goes wrong.
//
// The span trace answers "what happened over the whole run" at the cost of
// unbounded memory; the flight recorder answers "what happened *just
// before* the alarm" at fixed cost. Producers (rate controller via the
// OneAPI server, admission control, player stall edges, watchdogs) record
// the last `capacity` events per event domain; when a RunHealthMonitor
// alarm fires the ring is latched into a snapshot, and the scenario runner
// dumps everything as JSON on `fail_on_unhealthy=` aborts or on a fatal
// signal.
//
// Threading/determinism model matches the other obs sinks: one recorder
// per EventDomain, no locking, merged post-run in cell order with
// AbsorbShard + SortMergedEvents. The disabled path is a null pointer at
// every producer — one predicted branch, no argument construction (string
// args are built inside the `if (flight != nullptr)` guard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lte/types.h"

namespace flare {

struct FlightEvent {
  double t_s = 0.0;
  int cell = 0;
  /// Monotone per recorder; preserves intra-cell order across ring wraps
  /// and breaks (t_s, cell) ties deterministically after a merge.
  std::uint64_t seq = 0;
  /// Event kind; must point at a string with static lifetime.
  const char* kind = "";
  FlowId flow = kInvalidFlow;
  int client = -1;
  double value = 0.0;
  /// Extra fields, pre-rendered as a JSON object ("{...}") or empty.
  std::string args;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void set_cell(int cell) { cell_ = cell; }
  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded / evicted from the ring.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const { return dropped_; }

  void Record(double t_s, const char* kind, FlowId flow = kInvalidFlow,
              int client = -1, double value = 0.0, std::string args = {});

  /// Latch the current ring into the post-mortem snapshot. Only the first
  /// alarm latches (later alarms would overwrite the interesting context);
  /// `reason` must have static lifetime or outlive the recorder.
  void TriggerSnapshot(const char* reason, double t_s);
  bool triggered() const { return triggered_; }
  const std::string& trigger_reason() const { return trigger_reason_; }
  double trigger_t_s() const { return trigger_t_s_; }

  /// Ring contents oldest-first (after a merge: the absorbed events).
  std::vector<FlightEvent> RecentEvents() const;
  /// Append still-ringed events with seq >= `from_seq` (oldest-first) to
  /// `out`, restamped with `cell` like AbsorbShard would. Returns the
  /// next unseen seq (pass it back as the next `from_seq`; start at 0).
  /// Read-only: the telemetry publisher tails shards with this at epoch
  /// barriers.
  std::uint64_t CollectEventsSince(std::uint64_t from_seq, int cell,
                                   std::vector<FlightEvent>* out) const;
  const std::vector<FlightEvent>& snapshot() const { return snapshot_; }

  /// Fold a shard's ring and snapshot in, restamped with `cell`. The
  /// merged recorder keeps everything (it is a sink, not a ring); the
  /// earliest trigger by (t_s, cell) wins the trigger metadata.
  void AbsorbShard(const FlightRecorder& shard, int cell);
  /// Order merged events and snapshot by (t_s, cell, seq).
  void SortMergedEvents();

  void WriteJson(std::ostream& out, const std::string& reason = {}) const;
  /// Dump a post-mortem document to `path`; false when unwritable.
  bool DumpPostmortem(const std::string& path,
                      const std::string& reason) const;

 private:
  void WriteEventJson(std::ostream& out, const FlightEvent& event) const;

  std::size_t capacity_;
  int cell_ = 0;
  std::vector<FlightEvent> ring_;
  std::size_t next_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  bool merged_ = false;  // AbsorbShard was called: ring_ is unbounded
  bool triggered_ = false;
  std::string trigger_reason_;
  double trigger_t_s_ = 0.0;
  int trigger_cell_ = 0;
  std::vector<FlightEvent> snapshot_;
};

/// Best-effort fatal-signal hook (SIGSEGV/SIGABRT/SIGFPE): dumps the
/// recorder to `path` from the handler. Not async-signal-safe in the
/// strict sense — acceptable for a post-mortem of last resort, which is
/// attempted exactly once. Pass nullptr to uninstall.
void InstallFatalSignalPostmortem(const FlightRecorder* recorder,
                                  std::string path);

}  // namespace flare
