#include "obs/bai_trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/metrics.h"
#include "obs/qoe_analytics.h"
#include "obs/span_trace.h"
#include "obs/watchdog.h"
#include "util/csv.h"

namespace flare {

BaiTraceSink::BaiTraceSink(SimTime tti_flush_period)
    : flush_period_(std::max<SimTime>(tti_flush_period, kTti)) {}

void BaiTraceSink::RecordTti(SimTime now, int rbs_priority, int rbs_shared,
                             double gbr_shortfall_bytes) {
  if (now - window_start_ >= flush_period_ && pending_.ttis > 0) {
    Flush(now);
  }
  ++pending_.ttis;
  pending_.rbs_priority += static_cast<std::uint64_t>(rbs_priority);
  pending_.rbs_shared += static_cast<std::uint64_t>(rbs_shared);
  pending_shortfall_sum_ += gbr_shortfall_bytes;
}

void BaiTraceSink::Flush(SimTime now) {
  if (pending_.ttis == 0) {
    window_start_ = now;
    return;
  }
  pending_.t_s = ToSeconds(now);
  pending_.mean_gbr_shortfall_bytes =
      pending_shortfall_sum_ / static_cast<double>(pending_.ttis);
  tti_rows_.push_back(pending_);
  pending_ = TtiAggregateRow{};
  pending_shortfall_sum_ = 0.0;
  window_start_ = now;
}

void BaiTraceSink::AbsorbShard(const BaiTraceSink& shard, int cell) {
  for (BaiTraceRow row : shard.bai_rows_) {
    row.cell = cell;
    bai_rows_.push_back(row);
  }
  for (TtiAggregateRow row : shard.tti_rows_) {
    row.cell = cell;
    tti_rows_.push_back(row);
  }
  for (PlayerSummary player : shard.players_) {
    player.cell = cell;
    players_.push_back(player);
  }
}

void BaiTraceSink::SortMergedRows() {
  std::stable_sort(bai_rows_.begin(), bai_rows_.end(),
                   [](const BaiTraceRow& a, const BaiTraceRow& b) {
                     if (a.t_s != b.t_s) return a.t_s < b.t_s;
                     if (a.cell != b.cell) return a.cell < b.cell;
                     return a.flow < b.flow;
                   });
  std::stable_sort(tti_rows_.begin(), tti_rows_.end(),
                   [](const TtiAggregateRow& a, const TtiAggregateRow& b) {
                     if (a.t_s != b.t_s) return a.t_s < b.t_s;
                     return a.cell < b.cell;
                   });
  std::stable_sort(players_.begin(), players_.end(),
                   [](const PlayerSummary& a, const PlayerSummary& b) {
                     if (a.cell != b.cell) return a.cell < b.cell;
                     return a.client < b.client;
                   });
}

void BaiTraceSink::WriteCsv(std::ostream& out) const {
  out << "t_s,cell,flow,observed_bits_per_rb,smoothed_bits_per_rb,"
         "recommended_level,hysteresis_up,enforced_level,rate_kbps,"
         "gbr_kbps,video_fraction,solve_time_ms,feasible,cause\n";
  for (const BaiTraceRow& r : bai_rows_) {
    out << FormatNumber(r.t_s) << ',' << r.cell << ',' << r.flow << ','
        << FormatNumber(r.observed_bits_per_rb) << ','
        << FormatNumber(r.smoothed_bits_per_rb) << ','
        << r.recommended_level << ',' << r.hysteresis_up << ','
        << r.enforced_level << ',' << FormatNumber(r.rate_bps / 1000.0)
        << ',' << FormatNumber(r.gbr_bps / 1000.0) << ','
        << FormatNumber(r.video_fraction) << ','
        << FormatNumber(r.solve_time_ms) << ',' << (r.feasible ? 1 : 0)
        << ',' << CsvField(r.cause) << '\n';
  }
}

bool BaiTraceSink::ExportCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteCsv(out);
  return true;
}

void BaiTraceSink::WriteJson(std::ostream& out,
                             const MetricsRegistry* registry,
                             const RunHealthMonitor* health,
                             const QoeAnalytics* qoe) const {
  out << "{\n\"metrics\": ";
  if (registry != nullptr) {
    registry->WriteJson(out);
  } else {
    out << "null\n";
  }
  out << ",\n\"run_health\": ";
  if (health != nullptr) {
    health->WriteJson(out);
  } else {
    out << "null";
  }
  out << ",\n\"qoe\": ";
  if (qoe != nullptr) {
    qoe->WriteJson(out);
  } else {
    out << "null";
  }
  out << ",\n\"bai_trace\": [";
  for (std::size_t i = 0; i < bai_rows_.size(); ++i) {
    const BaiTraceRow& r = bai_rows_[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"t_s\": " << FormatNumber(r.t_s)
        << ", \"cell\": " << r.cell << ", \"flow\": " << r.flow
        << ", \"observed_bits_per_rb\": "
        << FormatNumber(r.observed_bits_per_rb)
        << ", \"smoothed_bits_per_rb\": "
        << FormatNumber(r.smoothed_bits_per_rb)
        << ", \"recommended_level\": " << r.recommended_level
        << ", \"hysteresis_up\": " << r.hysteresis_up
        << ", \"enforced_level\": " << r.enforced_level
        << ", \"rate_bps\": " << FormatNumber(r.rate_bps)
        << ", \"gbr_bps\": " << FormatNumber(r.gbr_bps)
        << ", \"video_fraction\": " << FormatNumber(r.video_fraction)
        << ", \"solve_time_ms\": " << FormatNumber(r.solve_time_ms)
        << ", \"feasible\": " << (r.feasible ? "true" : "false")
        << ", \"cause\": " << JsonQuote(r.cause) << '}';
  }
  out << "],\n\"tti_aggregates\": [";
  for (std::size_t i = 0; i < tti_rows_.size(); ++i) {
    const TtiAggregateRow& r = tti_rows_[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"t_s\": " << FormatNumber(r.t_s)
        << ", \"cell\": " << r.cell << ", \"ttis\": " << r.ttis
        << ", \"rbs_priority\": " << r.rbs_priority
        << ", \"rbs_shared\": " << r.rbs_shared
        << ", \"mean_gbr_shortfall_bytes\": "
        << FormatNumber(r.mean_gbr_shortfall_bytes) << '}';
  }
  out << "],\n\"players\": [";
  for (std::size_t i = 0; i < players_.size(); ++i) {
    const PlayerSummary& p = players_[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"cell\": " << p.cell
        << ", \"client\": " << p.client << ", \"flow\": " << p.flow
        << ", \"avg_bitrate_bps\": " << FormatNumber(p.avg_bitrate_bps)
        << ", \"switches\": " << p.switches << ", \"stalls\": " << p.stalls
        << ", \"stall_s\": " << FormatNumber(p.stall_s)
        << ", \"qoe\": " << FormatNumber(p.qoe)
        << ", \"segments\": " << p.segments << '}';
  }
  out << "]\n}\n";
}

bool BaiTraceSink::ExportJson(const std::string& path,
                              const MetricsRegistry* registry,
                              const RunHealthMonitor* health,
                              const QoeAnalytics* qoe) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJson(out, registry, health, qoe);
  return true;
}

}  // namespace flare
