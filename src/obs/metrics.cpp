#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <ostream>
#include <utility>

#include "util/csv.h"

namespace flare {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
}

namespace {

/// Shared quantile kernel: the live Histogram and the detached
/// HistogramSnapshot must agree bit for bit, so both call this.
double QuantileImpl(const std::vector<double>& bounds,
                    const std::vector<std::uint64_t>& buckets,
                    std::uint64_t count, double sum, double q) {
  // NaN rather than a fake 0: downstream JSON export turns it into null
  // so tools never mistake "no samples" for "all samples were zero".
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  if (bounds.empty()) return sum / static_cast<double>(count);  // == Mean()
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lo_count = static_cast<double>(below);
    below += buckets[i];
    if (static_cast<double>(below) < target) continue;
    if (i == bounds.size()) break;  // overflow bucket: clamp below
    const double hi = bounds[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
    const double frac = std::clamp(
        (target - lo_count) / static_cast<double>(buckets[i]), 0.0, 1.0);
    return lo + (hi - lo) * frac;
  }
  return bounds.back();
}

std::vector<std::uint64_t> CumulativeImpl(
    const std::vector<std::uint64_t>& buckets) {
  std::vector<std::uint64_t> cumulative(buckets.size(), 0);
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    running += buckets[i];
    cumulative[i] = running;
  }
  return cumulative;
}

}  // namespace

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  return QuantileImpl(bounds_, buckets_, count_, sum_, q);
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  return QuantileImpl(bounds, buckets, count, sum, q);
}

std::vector<std::uint64_t> HistogramSnapshot::CumulativeCounts() const {
  return CumulativeImpl(buckets);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.bounds_ != bounds_) return;  // shards share one config
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<std::uint64_t> Histogram::CumulativeCounts() const {
  return CumulativeImpl(buckets_);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds)))
      .first->second;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other,
                                const std::string& prefix) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(prefix + name).Add(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(prefix + name).Set(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(prefix + name, histogram.bounds())
        .MergeFrom(histogram);
  }
}

namespace {

void WriteJsonString(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.AbsorbFrom(*this);
  return snap;
}

void MetricsSnapshot::AbsorbFrom(const MetricsRegistry& registry,
                                 const std::string& prefix) {
  for (const auto& [name, counter] : registry.counters()) {
    counters[prefix + name] += counter.value();
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    gauges[prefix + name] = gauge.value();
  }
  for (const auto& [name, histogram] : registry.histograms()) {
    const auto [it, inserted] =
        histograms.emplace(prefix + name, HistogramSnapshot{});
    HistogramSnapshot& dest = it->second;
    if (inserted) {
      dest = histogram.Snapshot();
      continue;
    }
    if (dest.bounds != histogram.bounds()) continue;  // shards share config
    const HistogramSnapshot shard = histogram.Snapshot();
    for (std::size_t i = 0; i < dest.buckets.size(); ++i) {
      dest.buckets[i] += shard.buckets[i];
    }
    dest.count += shard.count;
    dest.sum += shard.sum;
  }
}

void MetricsSnapshot::WriteJson(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, name);
    out << ": " << value;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, name);
    out << ": " << JsonNumber(value);
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    WriteJsonString(out, name);
    // Empty histograms export null aggregates (Quantile is NaN, and a
    // bare `nan` token would make the whole document unparseable).
    const bool empty = histogram.count == 0;
    out << ": {\"count\": " << histogram.count
        << ", \"sum\": " << JsonNumber(histogram.sum) << ", \"mean\": "
        << (empty ? "null" : JsonNumber(histogram.Mean()))
        << ", \"p50\": " << JsonNumber(histogram.Quantile(0.50))
        << ", \"p95\": " << JsonNumber(histogram.Quantile(0.95))
        << ", \"p99\": " << JsonNumber(histogram.Quantile(0.99))
        << ", \"buckets\": [";
    const std::vector<double>& bounds = histogram.bounds;
    const std::vector<std::uint64_t> cumulative =
        histogram.CumulativeCounts();
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < bounds.size()) {
        out << FormatNumber(bounds[i]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << cumulative[i] << '}';
    }
    out << "]}";
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

void MetricsRegistry::WriteJson(std::ostream& out) const {
  Snapshot().WriteJson(out);
}

bool MetricsRegistry::ExportJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteJson(out);
  return true;
}

bool MetricsRegistry::ExportCsv(const std::string& path) const {
  CsvWriter csv(path, {"metric", "kind", "field", "value"});
  if (!csv.ok()) return false;
  for (const auto& [name, counter] : counters_) {
    csv.RawRow({name, "counter", "value",
                FormatNumber(static_cast<double>(counter.value()))});
  }
  for (const auto& [name, gauge] : gauges_) {
    csv.RawRow({name, "gauge", "value", FormatNumber(gauge.value())});
  }
  for (const auto& [name, histogram] : histograms_) {
    csv.RawRow({name, "histogram", "count",
                FormatNumber(static_cast<double>(histogram.count()))});
    csv.RawRow({name, "histogram", "sum", FormatNumber(histogram.sum())});
    csv.RawRow({name, "histogram", "mean", FormatNumber(histogram.Mean())});
  }
  return true;
}

CounterHandle MakeCounterHandle(MetricsRegistry* registry,
                                const std::string& name) {
  return registry == nullptr ? CounterHandle{}
                             : CounterHandle(&registry->GetCounter(name));
}

GaugeHandle MakeGaugeHandle(MetricsRegistry* registry,
                            const std::string& name) {
  return registry == nullptr ? GaugeHandle{}
                             : GaugeHandle(&registry->GetGauge(name));
}

HistogramHandle MakeHistogramHandle(MetricsRegistry* registry,
                                    const std::string& name,
                                    std::vector<double> bounds) {
  return registry == nullptr
             ? HistogramHandle{}
             : HistogramHandle(
                   &registry->GetHistogram(name, std::move(bounds)));
}

}  // namespace flare
