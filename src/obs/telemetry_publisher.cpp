#include "obs/telemetry_publisher.h"

#include <string>
#include <utility>

#include "obs/span_trace.h"  // JsonQuote
#include "util/csv.h"        // JsonNumber

namespace flare {

std::string RenderFlightEventNdjson(const FlightEvent& event) {
  std::string line = "{\"t_s\": ";
  line += JsonNumber(event.t_s);
  line += ", \"cell\": ";
  line += std::to_string(event.cell);
  line += ", \"seq\": ";
  line += std::to_string(event.seq);
  line += ", \"kind\": ";
  line += JsonQuote(event.kind);
  line += ", \"flow\": ";
  line += std::to_string(event.flow);
  line += ", \"client\": ";
  line += std::to_string(event.client);
  line += ", \"value\": ";
  line += JsonNumber(event.value);
  if (!event.args.empty()) {
    line += ", \"args\": ";
    line += event.args;
  }
  line += '}';
  return line;
}

TelemetryPublisher::TelemetryPublisher(TelemetryServer* server,
                                       double interval_ms)
    : server_(server),
      interval_(std::chrono::duration_cast<
                std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              interval_ms > 0.0 ? interval_ms : 1000.0))) {
  if (server_ != nullptr) {
    next_due_ = std::chrono::steady_clock::now();  // first barrier publishes
  }
}

void TelemetryPublisher::ConfigureRun(std::string scenario, double duration_s,
                                      int cells, int workers) {
  scenario_ = std::move(scenario);
  duration_s_ = duration_s;
  cells_ = cells;
  workers_ = workers;
}

void TelemetryPublisher::AddShard(TelemetryShardView shard, int cell) {
  Shard entry;
  entry.view = std::move(shard);
  entry.cell = cell;
  shards_.push_back(std::move(entry));
}

void TelemetryPublisher::PublishNow(double sim_time_s) {
  if (server_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();

  TelemetrySnapshot snap;
  snap.scenario = scenario_;
  snap.sim_time_s = sim_time_s;
  snap.duration_s = duration_s_;
  snap.cells = cells_;
  snap.workers = workers_;

  if (coordinator_metrics_ != nullptr) {
    snap.metrics.AbsorbFrom(*coordinator_metrics_);
  }
  std::vector<std::string> event_lines;
  std::vector<FlightEvent> events;
  for (Shard& shard : shards_) {
    const std::string cell_prefix =
        "cell" + std::to_string(shard.cell) + ".";
    if (shard.view.metrics != nullptr) {
      snap.metrics.AbsorbFrom(*shard.view.metrics,
                              shard.view.metrics_prefix);
    }
    if (shard.view.qoe != nullptr) {
      const QoeLiveSummary live = shard.view.qoe->LiveSummary();
      auto gauge = [&](const char* name, double value) {
        snap.metrics.gauges[cell_prefix + name] = value;
      };
      gauge("qoe.sessions", static_cast<double>(live.sessions));
      gauge("qoe.played_sessions", static_cast<double>(live.played));
      gauge("qoe.avg_bitrate_bps", live.avg_bitrate_bps);
      gauge("qoe.jain_avg_bitrate", live.jain_avg_bitrate);
      gauge("qoe.avg_qoe", live.avg_qoe);
      gauge("qoe.stall_ratio", live.stall_ratio);
      gauge("qoe.stalls", static_cast<double>(live.stalls));
      gauge("qoe.switches", static_cast<double>(live.switches));
      gauge("qoe.admitted", static_cast<double>(live.admitted));
      gauge("qoe.blocked", static_cast<double>(live.blocked));
      gauge("qoe.blocking_probability", live.blocking_probability);
    }
    if (shard.view.health != nullptr) {
      const bool healthy = shard.view.health->healthy();
      const auto warnings =
          static_cast<std::uint64_t>(shard.view.health->warnings().size());
      snap.warnings += warnings;
      if (!healthy) {
        snap.healthy = false;
        snap.unhealthy_cells.push_back(shard.cell);
      }
      snap.metrics.gauges[cell_prefix + "health.healthy"] =
          healthy ? 1.0 : 0.0;
    }
    if (shard.view.flight != nullptr) {
      events.clear();
      shard.next_event_seq = shard.view.flight->CollectEventsSince(
          shard.next_event_seq, shard.cell, &events);
      for (const FlightEvent& event : events) {
        event_lines.push_back(RenderFlightEventNdjson(event));
      }
    }
  }

  // Runner progress + wall-clock rates. The epoch count comes from the
  // coordinator registry when the parallel runner is attached; otherwise
  // publishes double as the progress tick.
  ++publishes_;
  std::uint64_t epochs = publishes_;
  if (coordinator_metrics_ != nullptr) {
    const auto it = coordinator_metrics_->counters().find("runner.epochs");
    if (it != coordinator_metrics_->counters().end()) {
      epochs = it->second.value();
    }
  }
  snap.epochs = epochs;
  if (have_last_) {
    const double wall_s =
        std::chrono::duration<double>(now - last_publish_).count();
    if (wall_s > 0.0) {
      snap.epoch_rate_hz =
          static_cast<double>(epochs - last_epochs_) / wall_s;
      snap.sim_speedup = (sim_time_s - last_sim_time_s_) / wall_s;
    }
  }
  have_last_ = true;
  last_publish_ = now;
  last_epochs_ = epochs;
  last_sim_time_s_ = sim_time_s;

  auto gauge = [&](const char* name, double value) {
    snap.metrics.gauges[name] = value;
  };
  gauge("telemetry.sim_time_s", sim_time_s);
  gauge("telemetry.progress_pct",
        duration_s_ > 0.0 ? 100.0 * sim_time_s / duration_s_ : 0.0);
  gauge("telemetry.epoch_rate_hz", snap.epoch_rate_hz);
  gauge("telemetry.sim_speedup", snap.sim_speedup);
  gauge("telemetry.publishes", static_cast<double>(publishes_));
  gauge("telemetry.healthy", snap.healthy ? 1.0 : 0.0);

  server_->Publish(std::move(snap));
  server_->PublishEvents(std::move(event_lines));
  next_due_ = now + interval_;
}

}  // namespace flare
