// Run-health watchdogs for the FLARE control loop.
//
// A RunHealthMonitor is fed at each BAI barrier with the control loop's
// vital signs — solver feasibility, per-player stall time, GBR token
// credit left unspent, data-flow service — and raises a structured
// warning whenever a signal stays bad for a configured streak of
// consecutive BAIs. Warnings go three places: this monitor's list (the
// `run_health` section of the metrics JSON), a `health.warnings` counter
// in the attached MetricsRegistry, and `health` instant events in the
// attached SpanTracer, so an unhealthy stretch is visible right on the
// Perfetto timeline next to the decisions that caused it.
//
// Threading follows the shard model: one monitor per cell shard, fed
// only by that cell's event domain, merged post-run in cell order with
// AbsorbShard() + SortMergedWarnings().
//
// A warning fires once when a streak *reaches* its threshold and re-arms
// only after the signal fully recovers, so a 1000-BAI outage is one
// warning, not 997.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "lte/types.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"

namespace flare {

/// Streak thresholds, in consecutive BAI scans. A signal must stay bad
/// for the full streak before a warning fires.
struct WatchdogConfig {
  /// Solver reported infeasible (cell over capacity even at floor rungs).
  int infeasible_streak = 3;
  /// A player accrued stall time in every scanned BAI.
  int stall_streak = 3;
  /// Aggregate unspent GBR credit exceeded `gbr_shortfall_fraction` of
  /// one BAI's worth of promised GBR bytes.
  int gbr_shortfall_streak = 5;
  double gbr_shortfall_fraction = 0.5;
  /// A backlogged data flow was served zero bytes (starved by the
  /// priority phase).
  int starved_flow_streak = 5;
  /// Admission control rejected at least one arrival in every scanned
  /// BAI (the cell is in a sustained blocking regime).
  int blocking_streak = 3;
};

struct HealthWarning {
  double t_s = 0.0;
  int cell = 0;
  /// One of "infeasible_streak", "stall_streak", "gbr_shortfall",
  /// "starved_flow", "admission_blocking".
  std::string kind;
  /// Subject flow (starved_flow) or kInvalidFlow for cell-wide warnings.
  FlowId flow = kInvalidFlow;
  /// Subject client (stall_streak) or -1.
  int client = -1;
  /// Streak length at firing time, or shortfall bytes for gbr_shortfall.
  double value = 0.0;
  std::string detail;
};

class RunHealthMonitor {
 public:
  explicit RunHealthMonitor(const WatchdogConfig& config = {});
  RunHealthMonitor(const RunHealthMonitor&) = delete;
  RunHealthMonitor& operator=(const RunHealthMonitor&) = delete;

  /// Attach sinks (any may be null): `registry` gets a `health.warnings`
  /// counter, `tracer` gets `health` instants, and `flight` gets a
  /// `watchdog` event plus a ring snapshot latched on the first warning.
  void SetObservers(MetricsRegistry* registry, SpanTracer* tracer,
                    FlightRecorder* flight = nullptr);
  void set_cell(int cell) { cell_ = cell; }
  const WatchdogConfig& config() const { return config_; }

  // --- Feeds (one call per signal per BAI scan) ---------------------------
  void OnSolverResult(double t_s, bool feasible);
  void OnPlayerScan(double t_s, int client, double stall_s_delta);
  void OnGbrScan(double t_s, double shortfall_bytes, double bai_gbr_bytes);
  void OnFlowScan(double t_s, FlowId flow, bool backlogged,
                  std::uint64_t tx_bytes_delta);
  /// Per-BAI churn scan: arrivals and admission rejections since the
  /// previous scan. Scans with no arrivals are neutral (the streak
  /// neither grows nor resets — an idle cell is not evidence of health).
  void OnAdmissionScan(double t_s, std::uint64_t blocked_delta,
                       std::uint64_t arrivals_delta);

  bool healthy() const { return warnings_.empty(); }
  const std::vector<HealthWarning>& warnings() const { return warnings_; }

  /// Append another monitor's warnings, restamping their cell to `cell`.
  void AbsorbShard(const RunHealthMonitor& shard, int cell);
  /// Stable sort by (t_s, cell, kind) for worker-count-independent bytes.
  void SortMergedWarnings();

  /// {"healthy": bool, "warnings": [...]} — the metrics JSON `run_health`
  /// section.
  void WriteJson(std::ostream& out) const;

 private:
  void Emit(double t_s, const char* kind, FlowId flow, int client,
            double value, std::string detail);

  WatchdogConfig config_;
  int cell_ = 0;
  int infeasible_streak_ = 0;
  bool infeasible_armed_ = true;
  int gbr_streak_ = 0;
  bool gbr_armed_ = true;
  int blocking_streak_ = 0;
  bool blocking_armed_ = true;
  struct Streak {
    int length = 0;
    bool armed = true;
  };
  std::map<int, Streak> stall_streaks_;
  std::map<FlowId, Streak> starved_streaks_;
  std::vector<HealthWarning> warnings_;
  CounterHandle warnings_metric_;
  SpanTracer* tracer_ = nullptr;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace flare
