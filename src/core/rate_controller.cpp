#include "core/rate_controller.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace flare {

const char* DecisionCauseName(DecisionCause cause) {
  switch (cause) {
    case DecisionCause::kInit:
      return "init";
    case DecisionCause::kHold:
      return "hold";
    case DecisionCause::kSolverUp:
      return "solver-up";
    case DecisionCause::kHysteresisAdopted:
      return "hysteresis-adopted";
    case DecisionCause::kStabilityCap:
      return "stability-cap";
    case DecisionCause::kCapacityDown:
      return "capacity-down";
    case DecisionCause::kInfeasibleFallback:
      return "infeasible-fallback";
  }
  return "unknown";
}

const std::vector<const char*>& AllDecisionCauseNames() {
  static const std::vector<const char*> names = {
      DecisionCauseName(DecisionCause::kInit),
      DecisionCauseName(DecisionCause::kHold),
      DecisionCauseName(DecisionCause::kSolverUp),
      DecisionCauseName(DecisionCause::kHysteresisAdopted),
      DecisionCauseName(DecisionCause::kStabilityCap),
      DecisionCauseName(DecisionCause::kCapacityDown),
      DecisionCauseName(DecisionCause::kInfeasibleFallback),
  };
  return names;
}

FlareRateController::FlareRateController(const FlareParams& params)
    : params_(params) {
  if (params_.delta < 0) {
    throw std::invalid_argument("FlareRateController: delta < 0");
  }
}

void FlareRateController::AddFlow(FlowId id, std::vector<double> ladder_bps) {
  if (ladder_bps.empty()) {
    throw std::invalid_argument("FlareRateController: empty ladder");
  }
  if (flows_.count(id) > 0) return;
  FlowCtl ctl;
  ctl.ladder = std::move(ladder_bps);
  flows_.emplace(id, std::move(ctl));
}

void FlareRateController::RemoveFlow(FlowId id) {
  flows_.erase(id);
  sweep_.Remove(id);
}

int FlareRateController::CurrentLevel(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? -1 : it->second.last_level;
}

BaiDecision FlareRateController::DecideBai(
    const std::vector<FlowObservation>& observations, int n_data_flows,
    double rb_rate) {
  BaiDecision decision;
  if (observations.empty()) return decision;

  // --- Build problem (3)-(4).
  OptProblem problem;
  problem.n_data_flows = std::max(n_data_flows, 0);
  problem.alpha = params_.alpha;
  problem.rb_rate = rb_rate;
  problem.max_video_fraction = params_.max_video_fraction;

  std::vector<FlowCtl*> ctls;
  std::vector<FlowId> ids;
  for (const FlowObservation& obs : observations) {
    const auto it = flows_.find(obs.id);
    if (it == flows_.end()) {
      FLOG_WARN << "FlareRateController: observation for unknown flow "
                << obs.id;
      continue;
    }
    FlowCtl& ctl = it->second;
    OptFlow flow;
    flow.ladder_bps = ctl.ladder;
    flow.utility = obs.utility.value_or(params_.utility);
    flow.bits_per_rb = std::max(obs.bits_per_rb, 1.0);
    flow.min_level = 0;
    const int top = static_cast<int>(ctl.ladder.size()) - 1;
    // Stability constraint (4): at most one rung above the previous BAI.
    // New flows (last_level == -1) are capped at the lowest rung.
    int cap = ctl.last_level < 0 ? 0 : std::min(ctl.last_level + 1, top);
    if (obs.client_max_level) {
      cap = std::min(cap, std::clamp(*obs.client_max_level, 0, top));
    }
    flow.max_level = std::max(cap, 0);
    problem.flows.push_back(std::move(flow));
    ctls.push_back(&ctl);
    ids.push_back(obs.id);
  }
  if (problem.flows.empty()) return decision;

  // --- Solve (timed: this is Figure 9's measurement).
  problem.span_trace = span_trace_;
  SpanScope solve_span(span_trace_, kLaneControl, "solver", "solve");
  const auto start = std::chrono::steady_clock::now();
  OptResult solved;
  std::vector<int> recommended;
  if (params_.solver == SolverMode::kContinuousRelaxation) {
    solved = SolveContinuous(problem);
    recommended = DiscretizeDown(problem, solved.rates_bps);
  } else if (params_.solver == SolverMode::kIncrementalSweep) {
    // Refresh only what changed (Upsert is a no-op for identical
    // parameters); flows that left were dropped via RemoveFlow, so the
    // solver re-prices from the persisted warm state.
    for (std::size_t u = 0; u < problem.flows.size(); ++u) {
      sweep_.Upsert(ids[u], problem.flows[u]);
    }
    solved = sweep_.Solve(ids, problem.n_data_flows, problem.rb_rate,
                          problem.alpha, problem.max_video_fraction,
                          span_trace_);
    recommended = solved.levels;
  } else if (params_.solver == SolverMode::kBatchedSweep) {
    solved = batch_.Solve(problem);
    recommended = solved.levels;
  } else {
    solved = SolveGreedy(problem);
    recommended = solved.levels;
  }
  decision.solve_time = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now() - start);
  decision.feasible = solved.feasible;
  decision.objective = solved.objective;
  if (solve_span.enabled()) {
    solve_span.set_args("{\"flows\":" +
                        std::to_string(problem.flows.size()) +
                        ",\"feasible\":" +
                        (solved.feasible ? "true" : "false") + "}");
    solve_span.Close();
  }

  // --- Algorithm 1's stability rule per flow.
  double video_rb_cost = 0.0;
  for (std::size_t u = 0; u < recommended.size(); ++u) {
    FlowCtl& ctl = *ctls[u];
    const int star = recommended[u];
    const int previous = ctl.last_level;
    int next;
    DecisionCause cause;
    if (ctl.last_level < 0) {
      // First assignment: take the solver's (lowest-rung-capped) choice.
      next = star;
      ctl.consecutive_up = 0;
      cause = DecisionCause::kInit;
    } else if (star == ctl.last_level + 1) {
      ++ctl.consecutive_up;
      // Threshold delta * (L^{i-1} + 1) with 1-based ladder indices; our
      // rungs are 0-based, so the target rung star has 1-based index
      // star + 1.
      const int threshold = params_.delta * (star + 1);
      if (ctl.consecutive_up >= threshold) {
        next = ctl.last_level + 1;
        ctl.consecutive_up = 0;
        cause = threshold <= 1 ? DecisionCause::kSolverUp
                               : DecisionCause::kHysteresisAdopted;
      } else {
        next = ctl.last_level;  // hold until the recommendation persists
        cause = DecisionCause::kStabilityCap;
      }
    } else {
      ctl.consecutive_up = 0;
      next = std::min(ctl.last_level, star);  // drops apply immediately
      if (next < ctl.last_level) {
        cause = solved.feasible ? DecisionCause::kCapacityDown
                                : DecisionCause::kInfeasibleFallback;
      } else {
        cause = DecisionCause::kHold;
      }
    }
    ctl.last_level = next;

    RateAssignment assignment;
    assignment.id = ids[u];
    assignment.level = next;
    assignment.rate_bps = ctl.ladder[static_cast<std::size_t>(next)];
    assignment.recommended_level = star;
    assignment.consecutive_up = ctl.consecutive_up;
    assignment.previous_level = previous;
    assignment.cause = cause;
    video_rb_cost += assignment.rate_bps / problem.flows[u].bits_per_rb;
    decision.assignments.push_back(assignment);
  }
  decision.video_fraction = rb_rate > 0.0 ? video_rb_cost / rb_rate : 0.0;
  return decision;
}

}  // namespace flare
