#include "core/batch_solver.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "core/utility.h"

namespace flare {

void BatchSolver::BuildSteps(const OptProblem& problem) {
  const std::size_t n_flows = problem.flows.size();

  // --- Pass 1: rung kernel. Every (flow, rung-in-bounds) pair's RB-rate
  // cost and utility lands in one flat array; the inner loop is a pure
  // elementwise map over the ladder slice (vectorizable: no branches, one
  // multiply and one divide per lane, constants hoisted per flow).
  rung_begin_.clear();
  rung_begin_.reserve(n_flows + 1);
  std::size_t total_rungs = 0;
  rung_begin_.push_back(0);
  for (const OptFlow& f : problem.flows) {
    total_rungs += static_cast<std::size_t>(f.max_level - f.min_level) + 1;
    rung_begin_.push_back(total_rungs);
  }
  rung_cost_.resize(total_rungs);
  rung_util_.resize(total_rungs);
  for (std::size_t u = 0; u < n_flows; ++u) {
    const OptFlow& f = problem.flows[u];
    // Same expressions as IncrementalSolver::AppendSteps: cost multiplies
    // by the reciprocal (not a division) and utility is
    // beta * (1 - theta / rate) — identical rounding, identical bits.
    const double inv_e = 1.0 / f.bits_per_rb;
    const double beta = f.utility.beta;
    const double theta = f.utility.theta_bps;
    const double* ladder = f.ladder_bps.data() + f.min_level;
    double* cost = rung_cost_.data() + rung_begin_[u];
    double* util = rung_util_.data() + rung_begin_[u];
    const std::size_t count = rung_begin_[u + 1] - rung_begin_[u];
    for (std::size_t k = 0; k < count; ++k) {
      cost[k] = ladder[k] * inv_e;
      util[k] = beta * (1.0 - theta / ladder[k]);
    }
  }

  // --- Pass 2: upper concave hull per flow (monotone chain over the flat
  // rung arrays), emitting envelope edges as flat step records.
  steps_.clear();
  if (steps_.capacity() < total_rungs) steps_.reserve(total_rungs);
  for (std::size_t u = 0; u < n_flows; ++u) {
    const OptFlow& f = problem.flows[u];
    const std::size_t begin = rung_begin_[u];
    const std::size_t count = rung_begin_[u + 1] - begin;
    hull_level_.clear();
    hull_cost_.clear();
    hull_util_.clear();
    for (std::size_t k = 0; k < count; ++k) {
      const double cost = rung_cost_[begin + k];
      const double util = rung_util_[begin + k];
      // Identical pop test to the incremental path: a rung under the hull
      // buys less utility per RB than the edge skipping it.
      while (hull_cost_.size() >= 2) {
        const std::size_t b = hull_cost_.size() - 1;
        const std::size_t a = b - 1;
        if ((hull_util_[b] - hull_util_[a]) * (cost - hull_cost_[b]) <=
            (util - hull_util_[b]) * (hull_cost_[b] - hull_cost_[a])) {
          hull_level_.pop_back();
          hull_cost_.pop_back();
          hull_util_.pop_back();
        } else {
          break;
        }
      }
      hull_level_.push_back(f.min_level + static_cast<std::int32_t>(k));
      hull_cost_.push_back(cost);
      hull_util_.push_back(util);
    }
    for (std::size_t j = 1; j < hull_cost_.size(); ++j) {
      Step s;
      s.flow = static_cast<std::uint32_t>(u);
      s.to_level = hull_level_[j];
      s.dcost = hull_cost_[j] - hull_cost_[j - 1];
      s.dutil = hull_util_[j] - hull_util_[j - 1];
      s.rho = s.dutil / s.dcost;
      steps_.push_back(s);
    }
  }

  // The strict total order IncrementalSolver::StepBefore defines is (rho
  // desc, flow asc, to_level asc). ValidateProblem makes every hull edge's
  // rho positive and finite-or-inf (never NaN, never -0): the ladder
  // ascends strictly so dcost >= 0, beta/theta > 0 so dutil > 0. For such
  // doubles the IEEE-754 bit pattern orders exactly like the value, so
  // sorting ~bit_cast<uint64>(rho) ascending is rho descending — and since
  // the steps above were emitted in (flow asc, to_level asc) order, a
  // STABLE sort on that single key reproduces the comparator's tie-break
  // verbatim. LSD radix (16-bit digits, stable by construction) beats the
  // comparator introsort ~3x at the 100k-step scale this solver targets.
  const std::size_t n_steps = steps_.size();
  sort_keys_.resize(n_steps);
  sort_tmp_.resize(n_steps);
  for (std::size_t i = 0; i < n_steps; ++i) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &steps_[i].rho, sizeof(bits));
    sort_keys_[i].key = ~bits;
    sort_keys_[i].idx = static_cast<std::uint32_t>(i);
  }
  // Below this the radix counters' cache footprint (4 x 256 KiB zero +
  // count passes) costs more than comparing: fall back to a comparator
  // sort of the same packed keys. (key asc, idx asc) is precisely the
  // order the stable radix produces, so the two paths are interchangeable.
  constexpr std::size_t kRadixMinSteps = 8192;
  if (n_steps < kRadixMinSteps) {
    std::sort(sort_keys_.begin(), sort_keys_.end(),
              [](const SortKey& a, const SortKey& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.idx < b.idx;
              });
    return;
  }
  digit_count_.assign(std::size_t{1} << 16, 0);
  SortKey* src = sort_keys_.data();
  SortKey* dst = sort_tmp_.data();
  for (int pass = 0; pass < 4; ++pass) {
    const int shift = pass * 16;
    std::uint32_t* count = digit_count_.data();
    std::memset(count, 0, (std::size_t{1} << 16) * sizeof(std::uint32_t));
    for (std::size_t i = 0; i < n_steps; ++i) {
      ++count[(src[i].key >> shift) & 0xFFFF];
    }
    // All keys share this digit: the pass is the identity, skip the
    // scatter (common for the high exponent bytes of clustered rhos).
    if (n_steps > 0 &&
        count[(src[0].key >> shift) & 0xFFFF] == n_steps) {
      continue;
    }
    std::uint32_t sum = 0;
    for (std::size_t d = 0; d < (std::size_t{1} << 16); ++d) {
      const std::uint32_t c = count[d];
      count[d] = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n_steps; ++i) {
      dst[count[(src[i].key >> shift) & 0xFFFF]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != sort_keys_.data()) {
    std::swap(sort_keys_, sort_tmp_);
  }
}

OptResult BatchSolver::Solve(const OptProblem& problem) {
  SpanScope phase(problem.span_trace, kLaneControl, "solver",
                  "solve.batch_sweep");
  ValidateProblem(problem);
  const std::size_t n_flows = problem.flows.size();

  BuildSteps(problem);

  const double budget = problem.rb_rate * problem.max_video_fraction;
  const double n_alpha =
      static_cast<double>(std::max(problem.n_data_flows, 0)) * problem.alpha;

  // Floor every flow in problem order; the floor-cost accumulation divides
  // by bits_per_rb (not the reciprocal multiply the envelope uses), because
  // that is the exact FP sequence the incremental path runs.
  level_.resize(n_flows);
  blocked_.assign(n_flows, 0);
  double s = 0.0;
  for (std::size_t u = 0; u < n_flows; ++u) {
    const OptFlow& f = problem.flows[u];
    level_[u] = f.min_level;
    s += f.ladder_bps[static_cast<std::size_t>(f.min_level)] / f.bits_per_rb;
  }

  const bool feasible = s <= budget;
  double last_rho = 0.0;
  if (feasible) {
    for (const SortKey& kv : sort_keys_) {
      const Step& st = steps_[kv.idx];
      if (blocked_[st.flow] != 0) continue;
      if (s + st.dcost > budget) {
        blocked_[st.flow] = 1;  // a cheaper later flow may still fit
        continue;
      }
      double gain = st.dutil;
      if (n_alpha > 0.0) {
        gain += n_alpha * (std::log(problem.rb_rate - s - st.dcost) -
                           std::log(problem.rb_rate - s));
      }
      if (gain > 0.0) {
        level_[st.flow] = st.to_level;
        s += st.dcost;
        last_rho = st.rho;
      } else {
        // The flow's remaining steps have strictly lower rho against an
        // only-growing marginal data penalty: the whole chain is done.
        blocked_[st.flow] = 1;
      }
    }
  }

  OptResult result;
  result.feasible = feasible;
  result.levels.resize(n_flows);
  result.rates_bps.resize(n_flows);
  std::vector<VideoUtilityParams> params(n_flows);
  double cost = 0.0;
  for (std::size_t u = 0; u < n_flows; ++u) {
    const OptFlow& f = problem.flows[u];
    result.levels[u] = level_[u];
    result.rates_bps[u] =
        f.ladder_bps[static_cast<std::size_t>(level_[u])];
    params[u] = f.utility;
    cost += result.rates_bps[u] / f.bits_per_rb;
  }
  result.video_fraction = cost / problem.rb_rate;
  result.objective = TotalUtility(
      result.rates_bps, params, std::max(problem.n_data_flows, 0),
      problem.alpha,
      std::min(result.video_fraction, problem.max_video_fraction));
  last_lambda_ = n_alpha > 0.0
                     ? n_alpha / std::max(problem.rb_rate - cost, 1e-300)
                     : last_rho;
  return result;
}

std::vector<OptResult> BatchSolver::SolveMany(
    std::span<const OptProblem> problems) {
  std::vector<OptResult> results;
  results.reserve(problems.size());
  for (const OptProblem& problem : problems) {
    results.push_back(Solve(problem));
  }
  return results;
}

}  // namespace flare
