#include "core/utility.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace flare {

double VideoUtility(double rate_bps, const VideoUtilityParams& params) {
  if (rate_bps <= 0.0) return -std::numeric_limits<double>::infinity();
  return params.beta * (1.0 - params.theta_bps / rate_bps);
}

double VideoUtilityDerivative(double rate_bps,
                              const VideoUtilityParams& params) {
  if (rate_bps <= 0.0) return std::numeric_limits<double>::infinity();
  return params.beta * params.theta_bps / (rate_bps * rate_bps);
}

double DataUtility(int n_data_flows, double alpha,
                   double video_rb_fraction) {
  if (n_data_flows <= 0) return 0.0;
  if (video_rb_fraction >= 1.0) {
    return -std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(n_data_flows) * alpha *
         std::log(1.0 - video_rb_fraction);
}

double TotalUtility(const std::vector<double>& rates_bps,
                    const std::vector<VideoUtilityParams>& params,
                    int n_data_flows, double alpha,
                    double video_rb_fraction) {
  if (rates_bps.size() != params.size()) {
    throw std::invalid_argument("TotalUtility: size mismatch");
  }
  double total = DataUtility(n_data_flows, alpha, video_rb_fraction);
  for (std::size_t i = 0; i < rates_bps.size(); ++i) {
    total += VideoUtility(rates_bps[i], params[i]);
  }
  return total;
}

}  // namespace flare
