// Batched structure-of-arrays solver for FLARE's per-BAI problem (3)-(4),
// built for 10k+ flows per solve and many-cells-per-thread control planes.
//
// BatchSolver computes exactly what SolveSweep / IncrementalSolver compute
// — the rho-sorted concave-envelope sweep of optimizer.h — but with a data
// layout rewrite instead of an algorithm change:
//
//  * No per-flow heap objects. SolveSweep routes every solve through an
//    IncrementalSolver, which allocates one std::map node plus an OptFlow
//    copy (a ladder vector allocation) per flow and chases Rec* pointers
//    during the sweep. BatchSolver keeps everything in flat arrays that
//    are reused across solves: after warm-up a solve allocates only its
//    OptResult.
//  * A vectorizable envelope-evaluation kernel: rung RB-costs and
//    utilities for all flows are computed into flat per-rung arrays in one
//    tight pass (contiguous loads, no branches beyond the loop), then the
//    per-flow upper concave hulls are taken over those arrays.
//  * Flat per-step records (rho / flow index / target rung / cost & util
//    deltas) in one contiguous vector, ordered by the same strict total
//    order (rho desc, flow asc, to_level asc) the incremental solver
//    uses — but via a stable LSD radix sort over packed 64-bit keys
//    instead of a comparator sort. Validation guarantees rho > 0 (strict
//    ladder ascent and positive beta/theta make every hull edge gain
//    utility), so the IEEE-754 bit pattern of rho orders exactly like its
//    value and ~bit_cast<uint64>(rho) ascending is rho descending; steps
//    are emitted in (flow asc, to_level asc) order, so a *stable* sort on
//    the rho key alone reproduces the full tie-break. The sequence is
//    therefore identical to what std::sort with the three-way comparator
//    would produce, at roughly a third of the cost at 10k flows.
//
// Equivalence contract (enforced by tests/solver_differential_test.cpp):
// for any valid OptProblem,
//
//     BatchSolver().Solve(p) == SolveSweep(p) == IncrementalSolver replay
//
// bit for bit — levels, rates, video_fraction, objective and the feasible
// flag — because every floating-point expression here evaluates in the
// same order with the same operations as the incremental path (including
// its quirks: floor costs divide by bits_per_rb while envelope costs
// multiply by the precomputed reciprocal).
//
// SolveMany() solves a batch of independent cell problems back to back on
// one thread, reusing the scratch arrays so consecutive small solves stay
// cache-hot; it is defined to return exactly what per-problem Solve()
// calls return.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/optimizer.h"

namespace flare {

class BatchSolver {
 public:
  BatchSolver() = default;
  // Purely scratch state; copying would only copy caches.
  BatchSolver(const BatchSolver&) = delete;
  BatchSolver& operator=(const BatchSolver&) = delete;

  /// Solve (3)-(4). Validates like SolveSweep (throws std::invalid_argument
  /// on bad input) and returns a bit-identical OptResult.
  OptResult Solve(const OptProblem& problem);

  /// Batched multi-cell entry point: one thread solves every problem in
  /// order, cache-hot, reusing this solver's scratch. Element i of the
  /// result is bit-identical to an independent Solve(problems[i]).
  std::vector<OptResult> SolveMany(std::span<const OptProblem> problems);

  /// Dual capacity price at the last solve (same definition as
  /// IncrementalSolver::last_lambda(): n*alpha / (N - S) with data flows,
  /// else the rho of the last accepted step; 0 before the first solve).
  double last_lambda() const { return last_lambda_; }

 private:
  // One envelope edge: upgrade some flow to `to_level` at RB-rate cost
  // `dcost` for utility gain `dutil`. Flat records — no pointers back into
  // per-flow state — sorted by (rho desc, flow asc, to_level asc).
  struct Step {
    double rho = 0.0;
    std::uint32_t flow = 0;
    std::int32_t to_level = 0;
    double dcost = 0.0;
    double dutil = 0.0;
  };

  void BuildSteps(const OptProblem& problem);

  // --- SoA scratch, reused across solves (capacity persists).
  // Rung kernel output: cost/util per (flow, rung) within [min,max]
  // bounds, flow f's rungs at [rung_begin_[f], rung_begin_[f + 1]).
  std::vector<double> rung_cost_;
  std::vector<double> rung_util_;
  std::vector<std::size_t> rung_begin_;
  // Per-flow hull scratch (monotone chain over the rung arrays).
  std::vector<std::int32_t> hull_level_;
  std::vector<double> hull_cost_;
  std::vector<double> hull_util_;
  // Step records in emission order plus the radix-sorted key/index pairs
  // that define sweep order; the sweep walks sort_keys_ and indexes
  // steps_.
  struct SortKey {
    std::uint64_t key = 0;  // ~bit_cast<uint64>(rho): ascending == rho desc
    std::uint32_t idx = 0;  // index into steps_ (emission order breaks ties)
    std::uint32_t pad = 0;
  };
  std::vector<Step> steps_;
  std::vector<SortKey> sort_keys_;
  std::vector<SortKey> sort_tmp_;
  std::vector<std::uint32_t> digit_count_;
  // Per-flow sweep state.
  std::vector<std::int32_t> level_;
  std::vector<std::uint8_t> blocked_;

  double last_lambda_ = 0.0;
};

}  // namespace flare
