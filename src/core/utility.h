// FLARE's utility model — equations (1) and (2) of the paper.
//
// Video flow u with bitrate R_u contributes beta_u * (1 - theta_u / R_u):
// saturating utility, where theta_u encodes screen size (larger screens
// need more rate for the same experience) and beta_u the importance of
// video to the client. The n data flows contribute, after Lemma 1's
// reduction, n * alpha * log(1 - r), where r is the fraction of resource
// blocks given to video. The optimizer maximizes the sum.
#pragma once

#include <vector>

namespace flare {

struct VideoUtilityParams {
  double beta = 10.0;       // Table IV
  double theta_bps = 0.2e6; // Table IV (0.2 Mbps)
};

/// beta * (1 - theta / R); defined for R > 0.
double VideoUtility(double rate_bps, const VideoUtilityParams& params);

/// d/dR of VideoUtility = beta * theta / R^2.
double VideoUtilityDerivative(double rate_bps,
                              const VideoUtilityParams& params);

/// Lemma 1's aggregate data term: n * alpha * log(1 - r), r in [0, 1).
double DataUtility(int n_data_flows, double alpha, double video_rb_fraction);

/// Total objective (2) for a candidate assignment. `video_rb_fraction`
/// must be < 1 when n_data_flows > 0 (returns -infinity otherwise, which
/// keeps infeasible points out of argmax searches).
double TotalUtility(const std::vector<double>& rates_bps,
                    const std::vector<VideoUtilityParams>& params,
                    int n_data_flows, double alpha,
                    double video_rb_fraction);

}  // namespace flare
