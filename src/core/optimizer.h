// Solvers for FLARE's per-BAI bitrate optimization, problem (3)-(4).
//
//   max   sum_u beta_u (1 - theta_u / R_u)  +  n alpha log(1 - r)
//   s.t.  sum_u R_u / e_u  <=  r * N_rate ,   lo_u <= R_u <= hi_u
//
// where e_u = bits-per-RB the flow achieved in the previous BAI (from the
// RB & Rate Trace Module; this is the paper's B*R/b * n <= rN constraint
// with the BAI length cancelled) and N_rate is the cell's RB budget per
// second (num_rbs * 1000 TTIs).
//
// Three solvers:
//  * SolveContinuous — the convex relaxation of Proposition 1. At the
//    optimum R_u(lambda) = clamp(sqrt(beta_u theta_u e_u / lambda), lo, hi)
//    with lambda = n alpha / (N - S); S(lambda) is monotone, so a scalar
//    bisection finds the global optimum. (This replaces the paper's KNITRO
//    dependency with a closed-form KKT solver for the same program.)
//  * SolveGreedy — discrete solver: start every flow at its lowest rung
//    and repeatedly apply the single-level upgrade with the best objective
//    gain while positive and feasible. Near-optimal in practice
//    (cross-validated against SolveExhaustive in the test suite).
//  * SolveExhaustive — brute force over all rung combinations; exponential,
//    for tests and small instances only.
//  * SolveSweep / IncrementalSolver — canonical concave-envelope sweep with
//    a warm-start path for churn workloads (see below).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/utility.h"
#include "lte/types.h"
#include "obs/span_trace.h"

namespace flare {

struct OptFlow {
  std::vector<double> ladder_bps;  // ascending, non-empty
  VideoUtilityParams utility;
  /// Bits one RB carried for this flow in the previous BAI.
  double bits_per_rb = 1.0;
  /// Inclusive rung bounds (stability cap / client-info constraints),
  /// indices into ladder_bps.
  int min_level = 0;
  int max_level = 0;
};

struct OptProblem {
  std::vector<OptFlow> flows;
  int n_data_flows = 0;
  double alpha = 1.0;
  /// RB budget per second (num_rbs * 1000 for 1 ms TTIs).
  double rb_rate = 50'000.0;
  /// Cap on r so the data term stays finite (and data flows never starve
  /// completely) even with n = 0.
  double max_video_fraction = 0.999;
  /// Optional solver-phase span tracing on the control lane (not owned;
  /// null = disabled, the default — existing call sites are unaffected).
  SpanTracer* span_trace = nullptr;
};

struct OptResult {
  /// Chosen rung per flow (discrete solvers) — empty for SolveContinuous.
  std::vector<int> levels;
  /// Chosen rate per flow, bits/s (continuous: the un-rounded optimum).
  std::vector<double> rates_bps;
  /// Fraction r of RBs assigned to video.
  double video_fraction = 0.0;
  /// Objective value (2) at the solution.
  double objective = 0.0;
  /// False if even the all-minimum assignment violates capacity; the
  /// returned solution is then the all-minimum one.
  bool feasible = true;
};

/// Validate bounds/ladders; throws std::invalid_argument on bad input.
void ValidateProblem(const OptProblem& problem);
/// Per-flow half of ValidateProblem (also used by IncrementalSolver).
void ValidateFlow(const OptFlow& flow);

/// RB-rate cost of an assignment: sum R_u / e_u.
double RbRateCost(const OptProblem& problem,
                  const std::vector<double>& rates_bps);

/// Objective (2) for an assignment, -inf if capacity is violated.
double Objective(const OptProblem& problem,
                 const std::vector<double>& rates_bps);

OptResult SolveContinuous(const OptProblem& problem);
OptResult SolveGreedy(const OptProblem& problem);
OptResult SolveExhaustive(const OptProblem& problem);

/// Round a continuous solution down to ladder rungs (Algorithm 1's
/// discretization step: L* = max{k : r(k) <= R*}, floored at min_level).
std::vector<int> DiscretizeDown(const OptProblem& problem,
                                const std::vector<double>& rates_bps);

/// Cold entry point of the sweep solver: equivalent to feeding `problem`
/// into a fresh IncrementalSolver (flows keyed by index order). Returns
/// bit-identical levels/rates/objective to a warm solver holding the same
/// flows solved in the same order — the churn-path exactness contract.
OptResult SolveSweep(const OptProblem& problem);

/// Warm-startable solver for (3)-(4) built for session churn, where the
/// flow *set* changes between BAIs far more than the per-flow parameters.
///
/// Per flow it keeps the upper concave envelope of the (RB-rate cost,
/// utility) rung points; each envelope edge is an upgrade "step" with
/// marginal utility-per-RB ratio rho. All steps live in one vector sorted
/// by the strict total order (rho desc, flow id asc, to_level asc). A
/// solve starts every flow at its floor rung and sweeps the steps in that
/// order, accepting a step while it fits the budget and its utility gain
/// beats the data term's marginal log-penalty; a rejected step blocks the
/// rest of that flow's chain (its later steps have strictly lower rho).
///
/// Because the accepted set is a deterministic function of the *sorted*
/// step sequence — never of the order in which flows were inserted or
/// updated — a warm re-solve after any Upsert/Remove delta returns exactly
/// what a cold SolveSweep over the same flows returns. The warm win is
/// skipping the per-flow envelope rebuilds, map construction and the
/// global sort for the (typically large) unchanged majority.
///
/// The previous solve's dual price and rung choices are persisted keyed by
/// flow id (last_lambda()/last_levels()) for admission control and
/// diagnostics.
class IncrementalSolver {
 public:
  IncrementalSolver() = default;
  // Steps hold pointers into the flow map's nodes.
  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Insert or refresh a flow (validated; throws std::invalid_argument).
  /// A no-op when the flow's parameters are unchanged, which is what lets
  /// an untouched majority keep its envelope steps across solves.
  void Upsert(FlowId id, const OptFlow& flow);
  void Remove(FlowId id);
  bool Has(FlowId id) const { return recs_.count(id) > 0; }
  std::size_t NumFlows() const { return recs_.size(); }

  /// Solve (3)-(4) over the flows listed in `order` (each previously
  /// Upserted; duplicates/unknown ids throw). Result vectors align with
  /// `order`. Flows held by the solver but absent from `order` are ignored
  /// (they keep their cached envelopes). For bit-exact agreement with a
  /// cold SolveSweep, pass the same flow order the cold problem used.
  OptResult Solve(const std::vector<FlowId>& order, int n_data_flows,
                  double rb_rate, double alpha = 1.0,
                  double max_video_fraction = 0.999,
                  SpanTracer* span_trace = nullptr);

  /// Dual capacity price at the last solve: n*alpha / (N - S) with data
  /// flows present, else the ratio of the last accepted step (0 before the
  /// first solve / when nothing was accepted).
  double last_lambda() const { return last_lambda_; }
  /// Rung chosen per flow at the last solve, keyed by flow id.
  const std::map<FlowId, int>& last_levels() const { return last_levels_; }

 private:
  struct Rec {
    OptFlow flow;
    bool dirty = true;  // steps in steps_ are stale / not yet built
    // Per-solve scratch, validated against solve_epoch_.
    std::uint64_t active_epoch = 0;
    bool blocked = false;
    int level = 0;
  };
  struct Step {
    double rho = 0.0;  // dutil / dcost along the envelope edge
    FlowId id = kInvalidFlow;
    int to_level = 0;
    double dcost = 0.0;
    double dutil = 0.0;
    Rec* rec = nullptr;
  };

  static bool StepBefore(const Step& a, const Step& b);
  static void AppendSteps(FlowId id, Rec& rec, std::vector<Step>& out);
  void ApplyPending();

  std::map<FlowId, Rec> recs_;  // node-stable: steps point into it
  std::vector<Step> steps_;     // sorted by StepBefore
  std::size_t dirty_count_ = 0;
  std::uint64_t solve_epoch_ = 0;
  double last_lambda_ = 0.0;
  std::map<FlowId, int> last_levels_;
};

}  // namespace flare
