// Solvers for FLARE's per-BAI bitrate optimization, problem (3)-(4).
//
//   max   sum_u beta_u (1 - theta_u / R_u)  +  n alpha log(1 - r)
//   s.t.  sum_u R_u / e_u  <=  r * N_rate ,   lo_u <= R_u <= hi_u
//
// where e_u = bits-per-RB the flow achieved in the previous BAI (from the
// RB & Rate Trace Module; this is the paper's B*R/b * n <= rN constraint
// with the BAI length cancelled) and N_rate is the cell's RB budget per
// second (num_rbs * 1000 TTIs).
//
// Three solvers:
//  * SolveContinuous — the convex relaxation of Proposition 1. At the
//    optimum R_u(lambda) = clamp(sqrt(beta_u theta_u e_u / lambda), lo, hi)
//    with lambda = n alpha / (N - S); S(lambda) is monotone, so a scalar
//    bisection finds the global optimum. (This replaces the paper's KNITRO
//    dependency with a closed-form KKT solver for the same program.)
//  * SolveGreedy — discrete solver: start every flow at its lowest rung
//    and repeatedly apply the single-level upgrade with the best objective
//    gain while positive and feasible. Near-optimal in practice
//    (cross-validated against SolveExhaustive in the test suite).
//  * SolveExhaustive — brute force over all rung combinations; exponential,
//    for tests and small instances only.
#pragma once

#include <vector>

#include "core/utility.h"
#include "obs/span_trace.h"

namespace flare {

struct OptFlow {
  std::vector<double> ladder_bps;  // ascending, non-empty
  VideoUtilityParams utility;
  /// Bits one RB carried for this flow in the previous BAI.
  double bits_per_rb = 1.0;
  /// Inclusive rung bounds (stability cap / client-info constraints),
  /// indices into ladder_bps.
  int min_level = 0;
  int max_level = 0;
};

struct OptProblem {
  std::vector<OptFlow> flows;
  int n_data_flows = 0;
  double alpha = 1.0;
  /// RB budget per second (num_rbs * 1000 for 1 ms TTIs).
  double rb_rate = 50'000.0;
  /// Cap on r so the data term stays finite (and data flows never starve
  /// completely) even with n = 0.
  double max_video_fraction = 0.999;
  /// Optional solver-phase span tracing on the control lane (not owned;
  /// null = disabled, the default — existing call sites are unaffected).
  SpanTracer* span_trace = nullptr;
};

struct OptResult {
  /// Chosen rung per flow (discrete solvers) — empty for SolveContinuous.
  std::vector<int> levels;
  /// Chosen rate per flow, bits/s (continuous: the un-rounded optimum).
  std::vector<double> rates_bps;
  /// Fraction r of RBs assigned to video.
  double video_fraction = 0.0;
  /// Objective value (2) at the solution.
  double objective = 0.0;
  /// False if even the all-minimum assignment violates capacity; the
  /// returned solution is then the all-minimum one.
  bool feasible = true;
};

/// Validate bounds/ladders; throws std::invalid_argument on bad input.
void ValidateProblem(const OptProblem& problem);

/// RB-rate cost of an assignment: sum R_u / e_u.
double RbRateCost(const OptProblem& problem,
                  const std::vector<double>& rates_bps);

/// Objective (2) for an assignment, -inf if capacity is violated.
double Objective(const OptProblem& problem,
                 const std::vector<double>& rates_bps);

OptResult SolveContinuous(const OptProblem& problem);
OptResult SolveGreedy(const OptProblem& problem);
OptResult SolveExhaustive(const OptProblem& problem);

/// Round a continuous solution down to ladder rungs (Algorithm 1's
/// discretization step: L* = max{k : r(k) <= R*}, floored at min_level).
std::vector<int> DiscretizeDown(const OptProblem& problem,
                                const std::vector<double>& rates_bps);

}  // namespace flare
