#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>

namespace flare {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<double> RatesAtLevels(const OptProblem& problem,
                                  const std::vector<int>& levels) {
  std::vector<double> rates(levels.size());
  for (std::size_t u = 0; u < levels.size(); ++u) {
    rates[u] = problem.flows[u]
                   .ladder_bps[static_cast<std::size_t>(levels[u])];
  }
  return rates;
}

std::vector<VideoUtilityParams> UtilityParams(const OptProblem& problem) {
  std::vector<VideoUtilityParams> params;
  params.reserve(problem.flows.size());
  for (const OptFlow& f : problem.flows) params.push_back(f.utility);
  return params;
}

OptResult MakeResult(const OptProblem& problem, std::vector<int> levels,
                     bool feasible) {
  OptResult result;
  result.rates_bps = RatesAtLevels(problem, levels);
  result.levels = std::move(levels);
  result.video_fraction =
      problem.rb_rate > 0.0
          ? RbRateCost(problem, result.rates_bps) / problem.rb_rate
          : 1.0;
  result.feasible = feasible;
  const double r = std::min(result.video_fraction,
                            problem.max_video_fraction);
  result.objective = TotalUtility(result.rates_bps, UtilityParams(problem),
                                  problem.n_data_flows, problem.alpha, r);
  return result;
}

}  // namespace

void ValidateFlow(const OptFlow& f) {
  if (f.ladder_bps.empty()) {
    throw std::invalid_argument("OptFlow: empty ladder");
  }
  double prev = 0.0;
  for (double rate : f.ladder_bps) {
    if (rate <= prev) {
      throw std::invalid_argument("OptFlow: ladder not ascending/positive");
    }
    prev = rate;
  }
  const int max_index = static_cast<int>(f.ladder_bps.size()) - 1;
  if (f.min_level < 0 || f.min_level > max_index || f.max_level < 0 ||
      f.max_level > max_index || f.min_level > f.max_level) {
    throw std::invalid_argument("OptFlow: bad level bounds");
  }
  if (f.bits_per_rb <= 0.0) {
    throw std::invalid_argument("OptFlow: bits_per_rb <= 0");
  }
  if (f.utility.theta_bps <= 0.0 || f.utility.beta <= 0.0) {
    throw std::invalid_argument("OptFlow: bad utility params");
  }
}

void ValidateProblem(const OptProblem& problem) {
  if (problem.rb_rate <= 0.0) {
    throw std::invalid_argument("OptProblem: rb_rate <= 0");
  }
  if (problem.max_video_fraction <= 0.0 ||
      problem.max_video_fraction > 1.0) {
    throw std::invalid_argument("OptProblem: bad max_video_fraction");
  }
  for (const OptFlow& f : problem.flows) ValidateFlow(f);
}

double RbRateCost(const OptProblem& problem,
                  const std::vector<double>& rates_bps) {
  double cost = 0.0;
  for (std::size_t u = 0; u < rates_bps.size(); ++u) {
    cost += rates_bps[u] / problem.flows[u].bits_per_rb;
  }
  return cost;
}

double Objective(const OptProblem& problem,
                 const std::vector<double>& rates_bps) {
  const double r = RbRateCost(problem, rates_bps) / problem.rb_rate;
  if (r > problem.max_video_fraction) return -kInf;
  return TotalUtility(rates_bps, UtilityParams(problem),
                      problem.n_data_flows, problem.alpha, r);
}

OptResult SolveContinuous(const OptProblem& problem) {
  SpanScope phase(problem.span_trace, kLaneControl, "solver",
                  "solve.continuous");
  ValidateProblem(problem);
  const std::size_t n_flows = problem.flows.size();
  const double budget = problem.rb_rate * problem.max_video_fraction;

  std::vector<double> lo(n_flows), hi(n_flows), eff(n_flows);
  for (std::size_t u = 0; u < n_flows; ++u) {
    const OptFlow& f = problem.flows[u];
    lo[u] = f.ladder_bps[static_cast<std::size_t>(f.min_level)];
    hi[u] = f.ladder_bps[static_cast<std::size_t>(f.max_level)];
    eff[u] = f.bits_per_rb;
  }

  // R_u(lambda): the unconstrained stationary point of the Lagrangian,
  // clamped to the box. lambda prices one RB/s of capacity.
  const auto rates_at = [&](double lambda) {
    std::vector<double> rates(n_flows);
    for (std::size_t u = 0; u < n_flows; ++u) {
      const OptFlow& f = problem.flows[u];
      const double unconstrained =
          std::sqrt(f.utility.beta * f.utility.theta_bps * eff[u] /
                    std::max(lambda, 1e-300));
      rates[u] = std::clamp(unconstrained, lo[u], hi[u]);
    }
    return rates;
  };

  OptResult result;
  result.feasible = true;

  const double min_cost = RbRateCost(problem, rates_at(kInf));
  if (min_cost >= budget) {
    // Even the floor violates capacity: report the floor, flag infeasible.
    std::vector<int> floor_levels(n_flows);
    for (std::size_t u = 0; u < n_flows; ++u) {
      floor_levels[u] = problem.flows[u].min_level;
    }
    OptResult floor = MakeResult(problem, floor_levels, /*feasible=*/false);
    floor.levels.clear();  // continuous solver reports rates only
    return floor;
  }

  // Residual whose root is the optimum:
  //   n > 0: g(lambda) = lambda - n*alpha / (N - S(lambda))   (fixed point)
  //   n = 0: g(lambda) = S(lambda) - budget                   (capacity)
  // Both are monotone in lambda (S is nonincreasing).
  const bool with_data = problem.n_data_flows > 0;
  const double n_alpha =
      static_cast<double>(problem.n_data_flows) * problem.alpha;

  const auto residual = [&](double lambda) {
    const double s = RbRateCost(problem, rates_at(lambda));
    if (with_data) {
      if (s >= problem.rb_rate) return -kInf;  // lambda too small
      return lambda - n_alpha / (problem.rb_rate - s);
    }
    return budget - s;  // want s <= budget; positive residual = feasible
  };

  // With n = 0 and capacity slack at the ceiling, take the ceiling.
  if (!with_data && RbRateCost(problem, rates_at(0.0)) <= budget) {
    result.rates_bps = rates_at(0.0);
  } else {
    SpanScope bisection(problem.span_trace, kLaneControl, "solver",
                        "solve.bisection");
    double lambda_lo = 1e-12;
    double lambda_hi = 1.0;
    while (residual(lambda_hi) < 0.0 && lambda_hi < 1e30) lambda_hi *= 4.0;
    while (residual(lambda_lo) > 0.0 && lambda_lo > 1e-290) {
      lambda_lo /= 4.0;
    }
    for (int iter = 0; iter < 200; ++iter) {
      const double mid = std::sqrt(lambda_lo * lambda_hi);  // log-bisection
      if (residual(mid) >= 0.0) {
        lambda_hi = mid;
      } else {
        lambda_lo = mid;
      }
    }
    result.rates_bps = rates_at(lambda_hi);
  }

  result.video_fraction =
      RbRateCost(problem, result.rates_bps) / problem.rb_rate;
  result.objective = TotalUtility(
      result.rates_bps, UtilityParams(problem), problem.n_data_flows,
      problem.alpha,
      std::min(result.video_fraction, problem.max_video_fraction));
  return result;
}

OptResult SolveGreedy(const OptProblem& problem) {
  SpanScope phase(problem.span_trace, kLaneControl, "solver",
                  "solve.greedy");
  ValidateProblem(problem);
  const std::size_t n_flows = problem.flows.size();

  std::vector<int> levels(n_flows);
  for (std::size_t u = 0; u < n_flows; ++u) {
    levels[u] = problem.flows[u].min_level;
  }
  std::vector<double> rates = RatesAtLevels(problem, levels);
  double current = Objective(problem, rates);
  if (current == -kInf) {
    // Floor violates capacity; nothing better exists under the bounds.
    return MakeResult(problem, std::move(levels), /*feasible=*/false);
  }

  // Greedy single-rung ascent: apply the best positive-gain upgrade until
  // none remains. Gains are evaluated incrementally in O(1) per candidate
  // (the data term depends only on the total RB-rate cost S), giving
  // O(U) per upgrade instead of re-evaluating the full objective.
  const double n_alpha =
      static_cast<double>(std::max(problem.n_data_flows, 0)) *
      problem.alpha;
  const double budget = problem.rb_rate * problem.max_video_fraction;
  double s = RbRateCost(problem, rates);

  const auto upgrade_gain = [&](std::size_t u) {
    const OptFlow& f = problem.flows[u];
    const double next_rate =
        f.ladder_bps[static_cast<std::size_t>(levels[u] + 1)];
    const double delta_s = (next_rate - rates[u]) / f.bits_per_rb;
    if (s + delta_s > budget) return -kInf;
    double gain = f.utility.beta * f.utility.theta_bps *
                  (1.0 / rates[u] - 1.0 / next_rate);
    if (n_alpha > 0.0) {
      gain += n_alpha * (std::log(problem.rb_rate - s - delta_s) -
                         std::log(problem.rb_rate - s));
    }
    return gain;
  };

  while (true) {
    double best_gain = 0.0;
    std::size_t best_u = n_flows;
    for (std::size_t u = 0; u < n_flows; ++u) {
      if (levels[u] >= problem.flows[u].max_level) continue;
      const double gain = upgrade_gain(u);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_u = u;
      }
    }
    if (best_u == n_flows) break;
    const OptFlow& f = problem.flows[best_u];
    ++levels[best_u];
    const double next_rate =
        f.ladder_bps[static_cast<std::size_t>(levels[best_u])];
    s += (next_rate - rates[best_u]) / f.bits_per_rb;
    rates[best_u] = next_rate;
  }

  return MakeResult(problem, std::move(levels), /*feasible=*/true);
}

OptResult SolveExhaustive(const OptProblem& problem) {
  ValidateProblem(problem);
  const std::size_t n_flows = problem.flows.size();
  std::vector<int> levels(n_flows);
  for (std::size_t u = 0; u < n_flows; ++u) {
    levels[u] = problem.flows[u].min_level;
  }

  std::vector<int> best = levels;
  double best_obj = -kInf;
  // Odometer enumeration over the level boxes.
  while (true) {
    const double obj = Objective(problem, RatesAtLevels(problem, levels));
    if (obj > best_obj) {
      best_obj = obj;
      best = levels;
    }
    std::size_t u = 0;
    while (u < n_flows) {
      if (levels[u] < problem.flows[u].max_level) {
        ++levels[u];
        break;
      }
      levels[u] = problem.flows[u].min_level;
      ++u;
    }
    if (u == n_flows) break;
  }

  return MakeResult(problem, std::move(best), best_obj > -kInf);
}

namespace {

bool SameFlowParams(const OptFlow& a, const OptFlow& b) {
  return a.bits_per_rb == b.bits_per_rb && a.min_level == b.min_level &&
         a.max_level == b.max_level && a.utility.beta == b.utility.beta &&
         a.utility.theta_bps == b.utility.theta_bps &&
         a.ladder_bps == b.ladder_bps;
}

}  // namespace

bool IncrementalSolver::StepBefore(const Step& a, const Step& b) {
  // Strict total order — every step key is unique, so any sorted-insertion
  // history converges on the same sequence (the warm == cold invariant).
  if (a.rho != b.rho) return a.rho > b.rho;
  if (a.id != b.id) return a.id < b.id;
  return a.to_level < b.to_level;
}

void IncrementalSolver::AppendSteps(FlowId id, Rec& rec,
                                    std::vector<Step>& out) {
  const OptFlow& f = rec.flow;
  const double inv_e = 1.0 / f.bits_per_rb;
  struct Pt {
    int level;
    double cost;
    double util;
  };
  // Upper concave envelope of the rung points via a monotone chain: a rung
  // under the hull buys less utility per RB than the edge skipping it, so
  // the sweep's decreasing-rho order can never want it.
  std::vector<Pt> hull;
  hull.reserve(static_cast<std::size_t>(f.max_level - f.min_level) + 1);
  for (int l = f.min_level; l <= f.max_level; ++l) {
    const double rate = f.ladder_bps[static_cast<std::size_t>(l)];
    const Pt p{l, rate * inv_e,
               f.utility.beta * (1.0 - f.utility.theta_bps / rate)};
    while (hull.size() >= 2) {
      const Pt& a = hull[hull.size() - 2];
      const Pt& b = hull.back();
      if ((b.util - a.util) * (p.cost - b.cost) <=
          (p.util - b.util) * (b.cost - a.cost)) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(p);
  }
  for (std::size_t j = 1; j < hull.size(); ++j) {
    Step s;
    s.id = id;
    s.rec = &rec;
    s.to_level = hull[j].level;
    s.dcost = hull[j].cost - hull[j - 1].cost;
    s.dutil = hull[j].util - hull[j - 1].util;
    s.rho = s.dutil / s.dcost;
    out.push_back(s);
  }
}

void IncrementalSolver::Upsert(FlowId id, const OptFlow& flow) {
  ValidateFlow(flow);
  const auto [it, inserted] = recs_.try_emplace(id);
  Rec& rec = it->second;
  if (!inserted && !rec.dirty && SameFlowParams(rec.flow, flow)) return;
  if (!inserted && !rec.dirty) ++dirty_count_;
  if (inserted) ++dirty_count_;
  rec.flow = flow;
  rec.dirty = true;
}

void IncrementalSolver::Remove(FlowId id) {
  const auto it = recs_.find(id);
  if (it == recs_.end()) return;
  Rec* rec = &it->second;
  // Any steps referencing the record (stale or not) must go before the
  // map node does — they hold its address.
  steps_.erase(std::remove_if(steps_.begin(), steps_.end(),
                              [rec](const Step& s) { return s.rec == rec; }),
               steps_.end());
  if (rec->dirty) --dirty_count_;
  recs_.erase(it);
  last_levels_.erase(id);
}

void IncrementalSolver::ApplyPending() {
  if (dirty_count_ == 0) return;
  // Both branches land on the identical unique sequence (StepBefore is a
  // strict total order over unique keys); the split is purely a cost
  // trade-off between one big sort and an erase + merge.
  if (dirty_count_ * 4 >= recs_.size()) {
    steps_.clear();
    for (auto& [id, rec] : recs_) {
      AppendSteps(id, rec, steps_);
      rec.dirty = false;
    }
    std::sort(steps_.begin(), steps_.end(), StepBefore);
  } else {
    steps_.erase(std::remove_if(steps_.begin(), steps_.end(),
                                [](const Step& s) { return s.rec->dirty; }),
                 steps_.end());
    const auto mid = static_cast<std::ptrdiff_t>(steps_.size());
    for (auto& [id, rec] : recs_) {
      if (!rec.dirty) continue;
      AppendSteps(id, rec, steps_);
      rec.dirty = false;
    }
    std::sort(steps_.begin() + mid, steps_.end(), StepBefore);
    std::inplace_merge(steps_.begin(), steps_.begin() + mid, steps_.end(),
                       StepBefore);
  }
  dirty_count_ = 0;
}

OptResult IncrementalSolver::Solve(const std::vector<FlowId>& order,
                                   int n_data_flows, double rb_rate,
                                   double alpha, double max_video_fraction,
                                   SpanTracer* span_trace) {
  if (rb_rate <= 0.0) {
    throw std::invalid_argument("IncrementalSolver: rb_rate <= 0");
  }
  if (max_video_fraction <= 0.0 || max_video_fraction > 1.0) {
    throw std::invalid_argument("IncrementalSolver: bad max_video_fraction");
  }
  SpanScope phase(span_trace, kLaneControl, "solver", "solve.sweep");
  ApplyPending();
  ++solve_epoch_;

  const double budget = rb_rate * max_video_fraction;
  const double n_alpha =
      static_cast<double>(std::max(n_data_flows, 0)) * alpha;

  // Floor every ordered flow and accumulate the floor cost in `order`
  // order (SolveSweep feeds the cold problem's flow order, so the FP sums
  // agree bitwise).
  double s = 0.0;
  for (const FlowId id : order) {
    const auto it = recs_.find(id);
    if (it == recs_.end()) {
      throw std::invalid_argument("IncrementalSolver: unknown flow in order");
    }
    Rec& rec = it->second;
    if (rec.active_epoch == solve_epoch_) {
      throw std::invalid_argument(
          "IncrementalSolver: duplicate flow in order");
    }
    rec.active_epoch = solve_epoch_;
    rec.blocked = false;
    rec.level = rec.flow.min_level;
    s += rec.flow.ladder_bps[static_cast<std::size_t>(rec.flow.min_level)] /
         rec.flow.bits_per_rb;
  }

  const bool feasible = s <= budget;
  double last_rho = 0.0;
  if (feasible) {
    for (const Step& st : steps_) {
      Rec& rec = *st.rec;
      if (rec.active_epoch != solve_epoch_ || rec.blocked) continue;
      if (s + st.dcost > budget) {
        rec.blocked = true;  // a cheaper later flow may still fit
        continue;
      }
      double gain = st.dutil;
      if (n_alpha > 0.0) {
        gain += n_alpha * (std::log(rb_rate - s - st.dcost) -
                           std::log(rb_rate - s));
      }
      if (gain > 0.0) {
        rec.level = st.to_level;
        s += st.dcost;
        last_rho = st.rho;
      } else {
        // This flow's remaining steps have strictly lower rho against an
        // only-growing marginal data penalty: the whole chain is done.
        rec.blocked = true;
      }
    }
  }

  OptResult result;
  result.feasible = feasible;
  result.levels.resize(order.size());
  result.rates_bps.resize(order.size());
  std::vector<VideoUtilityParams> params(order.size());
  last_levels_.clear();
  double cost = 0.0;
  for (std::size_t u = 0; u < order.size(); ++u) {
    const Rec& rec = recs_.find(order[u])->second;
    result.levels[u] = rec.level;
    result.rates_bps[u] =
        rec.flow.ladder_bps[static_cast<std::size_t>(rec.level)];
    params[u] = rec.flow.utility;
    cost += result.rates_bps[u] / rec.flow.bits_per_rb;
    last_levels_.emplace(order[u], rec.level);
  }
  result.video_fraction = cost / rb_rate;
  result.objective = TotalUtility(
      result.rates_bps, params, std::max(n_data_flows, 0), alpha,
      std::min(result.video_fraction, max_video_fraction));
  last_lambda_ = n_alpha > 0.0
                     ? n_alpha / std::max(rb_rate - cost, 1e-300)
                     : last_rho;
  return result;
}

OptResult SolveSweep(const OptProblem& problem) {
  ValidateProblem(problem);
  IncrementalSolver solver;
  std::vector<FlowId> order;
  order.reserve(problem.flows.size());
  for (std::size_t u = 0; u < problem.flows.size(); ++u) {
    const FlowId id = static_cast<FlowId>(u + 1);
    solver.Upsert(id, problem.flows[u]);
    order.push_back(id);
  }
  return solver.Solve(order, problem.n_data_flows, problem.rb_rate,
                      problem.alpha, problem.max_video_fraction,
                      problem.span_trace);
}

std::vector<int> DiscretizeDown(const OptProblem& problem,
                                const std::vector<double>& rates_bps) {
  SpanScope phase(problem.span_trace, kLaneControl, "solver",
                  "solve.discretize");
  std::vector<int> levels(rates_bps.size());
  for (std::size_t u = 0; u < rates_bps.size(); ++u) {
    const OptFlow& f = problem.flows[u];
    int level = f.min_level;
    for (int k = f.min_level; k <= f.max_level; ++k) {
      if (f.ladder_bps[static_cast<std::size_t>(k)] <=
          rates_bps[u] + 1e-9) {
        level = k;
      }
    }
    levels[u] = level;
  }
  return levels;
}

}  // namespace flare
