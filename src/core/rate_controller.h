// Algorithm 1: FLARE's per-BAI bitrate calculation with stability
// hysteresis.
//
// Each BAI the controller rebuilds problem (3)-(4) from the RB & Rate Trace
// observations (bits-per-RB per flow), solves it (exact/greedy or the
// continuous relaxation + round-down), and then applies the paper's
// stability rule: a recommended one-rung increase is only adopted after it
// has been recommended for delta * (L+1) consecutive BAIs (slower increases
// at higher rungs, after FESTIVE); decreases are adopted immediately
// (L_i = min(L_{i-1}, L*)). New flows start at the lowest rung.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <vector>

#include "core/batch_solver.h"
#include "core/optimizer.h"
#include "lte/types.h"
#include "obs/span_trace.h"

namespace flare {

enum class SolverMode {
  kGreedyDiscrete,  // the paper's "exact (3)-(4)" path
  kContinuousRelaxation,
  /// Warm-started concave-envelope sweep (IncrementalSolver): the solver
  /// persists per-flow state across BAIs so flow-set deltas (session
  /// churn) re-solve incrementally instead of from scratch.
  kIncrementalSweep,
  /// Batched structure-of-arrays sweep (BatchSolver): bit-identical
  /// results to kIncrementalSweep's cold path, rebuilt from flat arrays
  /// every BAI — the 10k+-flows-per-solve / many-cells-per-thread layout.
  kBatchedSweep,
};

struct FlareParams {
  double alpha = 1.0;  // data-vs-video weight (Table IV)
  int delta = 4;       // stability hysteresis (Table IV)
  VideoUtilityParams utility;  // beta = 10, theta = 0.2 Mbps (Table IV)
  SolverMode solver = SolverMode::kGreedyDiscrete;
  double max_video_fraction = 0.999;
};

/// Per-flow observation for one BAI.
struct FlowObservation {
  FlowId id = kInvalidFlow;
  /// Bits per RB this flow achieved over the last BAI (e_u = b_u / n_u).
  /// Callers fall back to the channel's nominal bits-per-RB when the flow
  /// transmitted nothing (new flow or idle gap).
  double bits_per_rb = 1.0;
  /// Client-info constraint: hard cap on the rung (e.g. device resolution
  /// or a data-cost limit sent by the plugin); nullopt = none.
  std::optional<int> client_max_level;
  /// Per-client utility override (clients may disclose screen size).
  std::optional<VideoUtilityParams> utility;
};

/// Why Algorithm 1 enforced the rung it did — the machine-readable label
/// on every BaiTraceRow and rung-change trace instant. Exactly one branch
/// of the stability rule produces each assignment.
enum class DecisionCause {
  kInit,               // flow's first BAI: adopt the (floor-capped) L*
  kHold,               // L* == L^{i-1}: nothing to do
  kSolverUp,           // one-rung increase adopted with no hysteresis wait
  kHysteresisAdopted,  // increase adopted after delta*(L+1) consecutive BAIs
  kStabilityCap,       // increase recommended but held pending hysteresis
  kCapacityDown,       // solver moved the flow down; drops apply immediately
  kInfeasibleFallback, // solver infeasible (over capacity at floor rungs)
};

const char* DecisionCauseName(DecisionCause cause);

/// Every DecisionCauseName() in enum order; lets reporting tools emit
/// stable, zero-filled cause tables even for causes that never fired.
const std::vector<const char*>& AllDecisionCauseNames();

struct RateAssignment {
  FlowId id = kInvalidFlow;
  /// Rung enforced after Algorithm 1's stability rule.
  int level = 0;
  double rate_bps = 0.0;
  /// The solver's recommendation L* before hysteresis (equals `level`
  /// except while an increase is pending adoption).
  int recommended_level = 0;
  /// Consecutive BAIs the solver has recommended a one-rung increase, as
  /// of this BAI (resets to 0 when the increase is adopted or abandoned).
  int consecutive_up = 0;
  /// Rung enforced by the previous BAI (-1 on the flow's first BAI).
  int previous_level = -1;
  /// Which stability-rule branch produced `level`.
  DecisionCause cause = DecisionCause::kInit;
};

struct BaiDecision {
  std::vector<RateAssignment> assignments;
  double video_fraction = 0.0;
  double objective = 0.0;
  bool feasible = true;
  /// Wall-clock time the solver took (the paper's Figure 9 metric).
  std::chrono::nanoseconds solve_time{0};
};

class FlareRateController {
 public:
  explicit FlareRateController(const FlareParams& params);

  /// Register a video flow with its ladder (from the MPD the plugin
  /// forwarded). Idempotent per id.
  void AddFlow(FlowId id, std::vector<double> ladder_bps);
  void RemoveFlow(FlowId id);
  bool HasFlow(FlowId id) const { return flows_.count(id) > 0; }
  std::size_t NumFlows() const { return flows_.size(); }

  /// Run one BAI: solve (3)-(4) over the registered flows and apply the
  /// stability rule. `rb_rate` is the cell RB budget per second.
  BaiDecision DecideBai(const std::vector<FlowObservation>& observations,
                        int n_data_flows, double rb_rate);

  /// Current rung of a flow (-1 before its first BAI).
  int CurrentLevel(FlowId id) const;

  const FlareParams& params() const { return params_; }
  void set_alpha(double alpha) { params_.alpha = alpha; }
  void set_delta(int delta) { params_.delta = delta; }
  void set_solver(SolverMode mode) { params_.solver = mode; }

  /// Attach a span tracer (null detaches): each DecideBai records a
  /// "solve" span plus the solver's internal phase spans on the control
  /// lane. Timestamps come from the tracer's clock.
  void SetSpanTracer(SpanTracer* tracer) { span_trace_ = tracer; }

 private:
  struct FlowCtl {
    std::vector<double> ladder;
    int last_level = -1;       // L^{i-1}, -1 before first assignment
    int consecutive_up = 0;    // BAIs in a row the solver recommended +1
  };

  FlareParams params_;
  std::map<FlowId, FlowCtl> flows_;
  /// Persistent warm state for kIncrementalSweep (unused by the other
  /// modes); RemoveFlow keeps it in sync with flows_.
  IncrementalSolver sweep_;
  /// Scratch-reusing SoA solver for kBatchedSweep (stateless between
  /// solves beyond reusable buffers, so flow-set changes need no sync).
  BatchSolver batch_;
  SpanTracer* span_trace_ = nullptr;
};

}  // namespace flare
