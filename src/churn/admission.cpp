#include "churn/admission.h"

#include <stdexcept>
#include <vector>

namespace flare {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kAdmitAll:
      return "admit-all";
    case AdmissionPolicy::kCapacityThreshold:
      return "capacity-threshold";
    case AdmissionPolicy::kUtilityDrop:
      return "utility-drop";
  }
  return "unknown";
}

std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name) {
  if (name == "admit-all") return AdmissionPolicy::kAdmitAll;
  if (name == "capacity-threshold") return AdmissionPolicy::kCapacityThreshold;
  if (name == "utility-drop") return AdmissionPolicy::kUtilityDrop;
  return std::nullopt;
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  if (config_.capacity_threshold <= 0.0 || config_.capacity_threshold > 1.0) {
    throw std::invalid_argument(
        "AdmissionController: capacity_threshold outside (0, 1]");
  }
}

double AdmissionController::FloorRbFraction(
    const AdmissionRequest& request) const {
  double cost = 0.0;
  for (const auto& [id, flow] : flows_) {
    cost += flow.ladder_bps[static_cast<std::size_t>(flow.min_level)] /
            flow.bits_per_rb;
  }
  const OptFlow& c = request.candidate;
  cost += c.ladder_bps[static_cast<std::size_t>(c.min_level)] / c.bits_per_rb;
  return cost / request.rb_rate;
}

AdmissionDecision AdmissionController::DecideUtilityDrop(
    const AdmissionRequest& request) {
  // Solve with the candidate pinned at its floor rung: the question is
  // "what does the cell look like the moment this flow joins", before any
  // stability-rule ramp-up.
  OptFlow pinned = request.candidate;
  pinned.max_level = pinned.min_level;
  solver_.Upsert(request.flow, pinned);

  std::vector<FlowId> order;
  order.reserve(flows_.size() + 1);
  for (const auto& [id, flow] : flows_) order.push_back(id);
  order.push_back(request.flow);

  const OptResult solved =
      solver_.Solve(order, request.n_data_flows, request.rb_rate,
                    config_.alpha, config_.max_video_fraction);
  solver_.Remove(request.flow);

  AdmissionDecision decision;
  decision.value = solved.objective;
  decision.admit = solved.feasible && solved.objective >= config_.objective_floor;
  return decision;
}

AdmissionDecision AdmissionController::Decide(const AdmissionRequest& request) {
  ValidateFlow(request.candidate);
  if (request.rb_rate <= 0.0) {
    throw std::invalid_argument("AdmissionController: rb_rate <= 0");
  }
  if (flows_.count(request.flow) > 0) {
    throw std::invalid_argument(
        "AdmissionController: candidate flow already admitted");
  }
  ++considered_;
  considered_metric_.Add();

  AdmissionDecision decision;
  switch (config_.policy) {
    case AdmissionPolicy::kAdmitAll:
      break;
    case AdmissionPolicy::kCapacityThreshold: {
      decision.value = FloorRbFraction(request);
      decision.admit = decision.value <= config_.capacity_threshold;
      break;
    }
    case AdmissionPolicy::kUtilityDrop:
      decision = DecideUtilityDrop(request);
      break;
  }
  if (decision.admit) {
    ++admitted_;
    admitted_metric_.Add();
  } else {
    ++rejected_;
    rejected_metric_.Add();
  }
  return decision;
}

void AdmissionController::OnAdmitted(FlowId id, const OptFlow& flow) {
  ValidateFlow(flow);
  flows_[id] = flow;
  solver_.Upsert(id, flow);
}

void AdmissionController::OnDeparted(FlowId id) {
  flows_.erase(id);
  solver_.Remove(id);
}

void AdmissionController::OnEstimate(FlowId id, double bits_per_rb) {
  const auto it = flows_.find(id);
  if (it == flows_.end() || bits_per_rb <= 0.0) return;
  it->second.bits_per_rb = bits_per_rb;
  solver_.Upsert(id, it->second);
}

void AdmissionController::SetObservers(MetricsRegistry* registry) {
  considered_metric_ = MakeCounterHandle(registry, "admission.considered");
  admitted_metric_ = MakeCounterHandle(registry, "admission.admitted");
  rejected_metric_ = MakeCounterHandle(registry, "admission.rejected");
}

double AdmissionController::blocking_probability() const {
  if (considered_ == 0) return 0.0;
  return static_cast<double>(rejected_) / static_cast<double>(considered_);
}

}  // namespace flare
