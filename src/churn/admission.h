// Admission control for the OneAPI connect path.
//
// Under session churn the interesting question stops being "which rung
// does each admitted flow get" and becomes "should this arrival be
// admitted at all" — the joint scheduling/admission setting of
// Bethanabhotla et al. The controller is consulted by OneApiServer when a
// delayed ConnectVideoClient lands, before any controller/PCRF state is
// created. Three policies:
//
//  * kAdmitAll         — baseline; every arrival is admitted.
//  * kCapacityThreshold— reject when the admitted floor-rung RB fraction
//                        (at previous-BAI bits-per-RB estimates, refreshed
//                        by the server each BAI) plus the candidate's
//                        would exceed `capacity_threshold`.
//  * kUtilityDrop      — solve (3)-(4) with the candidate pinned at its
//                        lowest rung; reject when the solved objective
//                        falls below `objective_floor`. The embedded
//                        IncrementalSolver keeps the admitted set's
//                        envelope state warm, so consecutive arrivals are
//                        one-flow deltas, not cold solves.
//
// Counters (admission.considered/admitted/rejected) and the derived
// blocking probability feed the churn experiment's primary metric.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>

#include "core/optimizer.h"
#include "lte/types.h"
#include "obs/metrics.h"

namespace flare {

enum class AdmissionPolicy {
  kAdmitAll,
  kCapacityThreshold,
  kUtilityDrop,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);
/// Parse a scenario_runner-style knob value ("admit-all",
/// "capacity-threshold", "utility-drop"); nullopt on unknown input.
std::optional<AdmissionPolicy> ParseAdmissionPolicy(const std::string& name);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::kAdmitAll;
  /// kCapacityThreshold: highest admitted floor-rung RB fraction.
  double capacity_threshold = 0.9;
  /// kUtilityDrop: lowest acceptable solved objective after admitting the
  /// candidate at its floor rung. The default rejects only infeasible
  /// arrivals (the objective of a loaded cell is routinely negative — the
  /// data term's log-penalty dominates — so 0 would block everything).
  double objective_floor = std::numeric_limits<double>::lowest();
  /// Optimizer parameters for kUtilityDrop, mirroring the cell's.
  double alpha = 1.0;
  double max_video_fraction = 0.999;
};

/// One connect-time admission question.
struct AdmissionRequest {
  FlowId flow = kInvalidFlow;
  /// Candidate at its floor rung: ladder/utility from the client info,
  /// bits_per_rb the server's channel-based estimate at connect time.
  OptFlow candidate;
  int n_data_flows = 0;
  /// Cell RB budget per second.
  double rb_rate = 0.0;
};

struct AdmissionDecision {
  bool admit = true;
  /// Policy diagnostic: floor-rung RB fraction (kCapacityThreshold) or the
  /// solved objective (kUtilityDrop); 0 for kAdmitAll.
  double value = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Decide an arrival. Pure with respect to the admitted set — the
  /// caller confirms an admission via OnAdmitted().
  AdmissionDecision Decide(const AdmissionRequest& request);

  /// Admitted-set bookkeeping, driven by the server: registration landed /
  /// session torn down / per-BAI bits-per-RB estimate refresh.
  void OnAdmitted(FlowId id, const OptFlow& flow);
  void OnDeparted(FlowId id);
  void OnEstimate(FlowId id, double bits_per_rb);

  /// Attach a metrics registry (null detaches): admission.considered /
  /// admitted / rejected counters.
  void SetObservers(MetricsRegistry* registry);

  const AdmissionConfig& config() const { return config_; }
  std::uint64_t considered() const { return considered_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  /// rejected / considered (0 before the first decision).
  double blocking_probability() const;
  std::size_t admitted_flows() const { return flows_.size(); }

 private:
  double FloorRbFraction(const AdmissionRequest& request) const;
  AdmissionDecision DecideUtilityDrop(const AdmissionRequest& request);

  AdmissionConfig config_;
  std::map<FlowId, OptFlow> flows_;  // admitted set, current estimates
  /// Warm solver for kUtilityDrop: holds the admitted set's envelopes so
  /// each arrival between BAIs is a one-flow delta.
  IncrementalSolver solver_;
  std::uint64_t considered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  CounterHandle considered_metric_;
  CounterHandle admitted_metric_;
  CounterHandle rejected_metric_;
};

}  // namespace flare
