// Session churn engine: stochastic session lifecycles for a cell.
//
// The paper's experiments hold the session population fixed for each run;
// real cells see users arrive and leave continuously, which is exactly the
// workload the warm-started optimizer path and the admission controller
// exist for. This engine drives that workload deterministically: arrivals
// from a renewal process (Poisson, or heavy-tailed lognormal
// inter-arrivals) and holding times drawn per session (exponential or
// lognormal), all from one explicit Rng so a seed fully determines the
// arrival/departure schedule regardless of what the spawned sessions do.
//
// The engine owns no model objects. A Host supplies two callbacks —
// spawn(kind) -> session id and destroy(id) — that the scenario layer
// implements by creating/tearing down UEs, transport flows, players and
// FLARE plugins mid-run. Admission rejections flow back via
// NotifyBlocked(id): the scenario calls it when the OneAPI server refuses
// the session's connect, and the engine then counts the session as blocked
// and forgets it (the already-queued departure event no-ops).
//
// Draw order is fixed per arrival — kind, holding time, next inter-arrival
// — so the schedule is reproducible even when spawns fail or sessions are
// blocked.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "churn/admission.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace flare {

enum class ChurnProcess {
  kPoisson,    // exponential inter-arrivals / holding times
  kLognormal,  // heavy-tailed, mean-preserving (sigma = lognormal_sigma)
};

const char* ChurnProcessName(ChurnProcess process);
std::optional<ChurnProcess> ParseChurnProcess(const std::string& name);

enum class SessionKind { kVideoSession, kDataSession };

struct ChurnConfig {
  bool enabled = false;
  ChurnProcess arrival_process = ChurnProcess::kPoisson;
  /// Mean arrivals per second for a cell with rate scale 1.
  double arrival_rate_per_s = 0.2;
  /// Per-cell multiplier on arrival_rate_per_s, indexed by cell tag;
  /// cells beyond the vector (or an empty vector) use 1.0.
  std::vector<double> cell_rate_scale;
  ChurnProcess hold_process = ChurnProcess::kLognormal;
  /// Mean session holding time; both processes preserve this mean.
  double mean_hold_s = 30.0;
  /// Shape of the lognormal draws (inter-arrival and/or holding).
  double lognormal_sigma = 1.0;
  /// Fraction of arrivals that are data sessions (rest are video).
  double data_fraction = 0.0;
  /// Hard cap on arrivals per engine; 0 = unbounded (run-length bound).
  std::uint64_t max_arrivals = 0;
  /// Connect-time admission policy (consumed by the scenario/server
  /// wiring, not by the engine itself).
  AdmissionConfig admission;
  /// Use the warm-started IncrementalSolver for FLARE cells under churn.
  bool warm_solver = true;
};

class SessionChurnEngine {
 public:
  /// Scenario-side lifecycle hooks. `spawn` returns the session id the
  /// engine should track (>= 0), or a negative value when the session
  /// could not be created at all (counted as blocked). `destroy` tears a
  /// session down at its natural departure time.
  struct Host {
    std::function<int(SessionKind)> spawn;
    std::function<void(int)> destroy;
  };

  /// `rng` should be a dedicated fork/split so churn draws never perturb
  /// channel or player randomness. `cell_tag` selects the rate scale and
  /// labels trace events.
  SessionChurnEngine(Simulator& sim, const ChurnConfig& config, Host host,
                     Rng rng, int cell_tag = 0);
  SessionChurnEngine(const SessionChurnEngine&) = delete;
  SessionChurnEngine& operator=(const SessionChurnEngine&) = delete;

  /// Schedule the first arrival (and the per-BAI scan when observers are
  /// attached). Call once, before the run starts.
  void Start();

  /// The session's connect was refused by admission control: forget it and
  /// count it as blocked. Safe to call for ids already gone (no-op).
  void NotifyBlocked(int session_id);

  /// Attach observability (any pointer may be null). Counters
  /// churn.sessions_arrived/departed/blocked and gauge
  /// churn.sessions_active; session_start/session_end instants on the
  /// control lane; sustained-blocking feed to `health` every
  /// `scan_period` (the BAI) when both are given.
  void SetObservers(MetricsRegistry* registry, SpanTracer* tracer,
                    RunHealthMonitor* health, SimTime scan_period);

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t departures() const { return departures_; }
  std::uint64_t blocked() const { return blocked_; }
  std::size_t active() const { return live_.size(); }
  /// blocked / arrivals (0 before the first arrival).
  double blocking_probability() const;
  const ChurnConfig& config() const { return config_; }

 private:
  double RateScale() const;
  double DrawInterarrivalS();
  double DrawHoldS();
  void ScheduleNextArrival();
  void OnArrival();
  void EndSession(int session_id);
  void Scan();

  Simulator& sim_;
  ChurnConfig config_;
  Host host_;
  Rng rng_;
  int cell_tag_ = 0;
  bool started_ = false;
  std::map<int, SessionKind> live_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t departures_ = 0;
  std::uint64_t blocked_ = 0;
  // Scan cursors for the sustained-blocking health feed.
  std::uint64_t scanned_arrivals_ = 0;
  std::uint64_t scanned_blocked_ = 0;
  CounterHandle arrived_metric_;
  CounterHandle departed_metric_;
  CounterHandle blocked_metric_;
  GaugeHandle active_metric_;
  SpanTracer* tracer_ = nullptr;
  RunHealthMonitor* health_ = nullptr;
  SimTime scan_period_ = 0;
};

}  // namespace flare
