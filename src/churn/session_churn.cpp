#include "churn/session_churn.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace flare {

const char* ChurnProcessName(ChurnProcess process) {
  switch (process) {
    case ChurnProcess::kPoisson:
      return "poisson";
    case ChurnProcess::kLognormal:
      return "lognormal";
  }
  return "unknown";
}

std::optional<ChurnProcess> ParseChurnProcess(const std::string& name) {
  if (name == "poisson") return ChurnProcess::kPoisson;
  if (name == "lognormal") return ChurnProcess::kLognormal;
  return std::nullopt;
}

namespace {

const char* SessionKindName(SessionKind kind) {
  return kind == SessionKind::kVideoSession ? "video" : "data";
}

/// Mean-preserving lognormal: exp(N(ln m - s^2/2, s)) has mean m.
double DrawLognormal(Rng& rng, double mean, double sigma) {
  return std::exp(rng.Gaussian(std::log(mean) - 0.5 * sigma * sigma, sigma));
}

}  // namespace

SessionChurnEngine::SessionChurnEngine(Simulator& sim,
                                       const ChurnConfig& config, Host host,
                                       Rng rng, int cell_tag)
    : sim_(sim),
      config_(config),
      host_(std::move(host)),
      rng_(rng),
      cell_tag_(cell_tag) {
  if (config_.arrival_rate_per_s <= 0.0) {
    throw std::invalid_argument("SessionChurnEngine: arrival_rate_per_s <= 0");
  }
  if (config_.mean_hold_s <= 0.0) {
    throw std::invalid_argument("SessionChurnEngine: mean_hold_s <= 0");
  }
  if (config_.lognormal_sigma <= 0.0) {
    throw std::invalid_argument("SessionChurnEngine: lognormal_sigma <= 0");
  }
  if (config_.data_fraction < 0.0 || config_.data_fraction > 1.0) {
    throw std::invalid_argument(
        "SessionChurnEngine: data_fraction outside [0, 1]");
  }
  if (!host_.spawn || !host_.destroy) {
    throw std::invalid_argument("SessionChurnEngine: missing host callbacks");
  }
}

double SessionChurnEngine::RateScale() const {
  const auto index = static_cast<std::size_t>(cell_tag_);
  if (cell_tag_ < 0 || index >= config_.cell_rate_scale.size()) return 1.0;
  return config_.cell_rate_scale[index];
}

double SessionChurnEngine::DrawInterarrivalS() {
  const double rate = config_.arrival_rate_per_s * RateScale();
  if (rate <= 0.0) return -1.0;  // rate scale silenced this cell
  const double mean = 1.0 / rate;
  if (config_.arrival_process == ChurnProcess::kPoisson) {
    return rng_.Exponential(mean);
  }
  return DrawLognormal(rng_, mean, config_.lognormal_sigma);
}

double SessionChurnEngine::DrawHoldS() {
  if (config_.hold_process == ChurnProcess::kPoisson) {
    return rng_.Exponential(config_.mean_hold_s);
  }
  return DrawLognormal(rng_, config_.mean_hold_s, config_.lognormal_sigma);
}

void SessionChurnEngine::Start() {
  if (started_) return;
  started_ = true;
  ScheduleNextArrival();
  if (scan_period_ > 0 &&
      (active_metric_.enabled() || health_ != nullptr)) {
    sim_.Every(scan_period_, scan_period_, [this] { Scan(); });
  }
}

void SessionChurnEngine::ScheduleNextArrival() {
  if (config_.max_arrivals > 0 && arrivals_ >= config_.max_arrivals) return;
  const double gap_s = DrawInterarrivalS();
  if (gap_s < 0.0) return;
  sim_.After(FromSeconds(gap_s), [this] { OnArrival(); });
}

void SessionChurnEngine::OnArrival() {
  // Fixed draw order per arrival — kind, hold, (spawn), next gap — so the
  // schedule is one deterministic stream no matter how spawns turn out.
  const SessionKind kind = rng_.Uniform() < config_.data_fraction
                               ? SessionKind::kDataSession
                               : SessionKind::kVideoSession;
  const double hold_s = DrawHoldS();
  ++arrivals_;
  arrived_metric_.Add();

  const int id = host_.spawn(kind);
  if (id < 0) {
    // Could not even create the session (e.g. synchronous admission
    // rejection): blocked on arrival.
    ++blocked_;
    blocked_metric_.Add();
  } else {
    live_.emplace(id, kind);
    if (tracer_ != nullptr) {
      tracer_->Instant(kLaneControl, "churn", "session_start",
                       static_cast<double>(sim_.Now()),
                       "{\"session\":" + std::to_string(id) + ",\"kind\":\"" +
                           SessionKindName(kind) + "\",\"hold_s\":" +
                           std::to_string(hold_s) + "}");
    }
    sim_.After(FromSeconds(hold_s), [this, id] { EndSession(id); });
  }
  ScheduleNextArrival();
}

void SessionChurnEngine::EndSession(int session_id) {
  const auto it = live_.find(session_id);
  if (it == live_.end()) return;  // blocked (or otherwise torn down) earlier
  const SessionKind kind = it->second;
  live_.erase(it);
  ++departures_;
  departed_metric_.Add();
  if (tracer_ != nullptr) {
    tracer_->Instant(kLaneControl, "churn", "session_end",
                     static_cast<double>(sim_.Now()),
                     "{\"session\":" + std::to_string(session_id) +
                         ",\"kind\":\"" + SessionKindName(kind) + "\"}");
  }
  host_.destroy(session_id);
}

void SessionChurnEngine::NotifyBlocked(int session_id) {
  const auto it = live_.find(session_id);
  if (it == live_.end()) return;
  live_.erase(it);
  ++blocked_;
  blocked_metric_.Add();
}

void SessionChurnEngine::Scan() {
  active_metric_.Set(static_cast<double>(live_.size()));
  if (health_ != nullptr) {
    health_->OnAdmissionScan(ToSeconds(sim_.Now()),
                             blocked_ - scanned_blocked_,
                             arrivals_ - scanned_arrivals_);
  }
  scanned_blocked_ = blocked_;
  scanned_arrivals_ = arrivals_;
}

void SessionChurnEngine::SetObservers(MetricsRegistry* registry,
                                      SpanTracer* tracer,
                                      RunHealthMonitor* health,
                                      SimTime scan_period) {
  arrived_metric_ = MakeCounterHandle(registry, "churn.sessions_arrived");
  departed_metric_ = MakeCounterHandle(registry, "churn.sessions_departed");
  blocked_metric_ = MakeCounterHandle(registry, "churn.sessions_blocked");
  active_metric_ = MakeGaugeHandle(registry, "churn.sessions_active");
  tracer_ = tracer;
  health_ = health;
  scan_period_ = scan_period;
}

double SessionChurnEngine::blocking_probability() const {
  if (arrivals_ == 0) return 0.0;
  return static_cast<double>(blocked_) / static_cast<double>(arrivals_);
}

}  // namespace flare
