// Deterministic load generator for the networked OneAPI control plane.
//
// The simulator side already knows how to produce realistic session
// workloads — churn/session_churn draws Poisson/lognormal
// arrival-and-hold schedules from one explicit Rng. The load generator
// reuses exactly that engine, but offline: BuildSchedule() runs it on a
// throwaway Simulator to precompute every arrival and departure time, and
// Run() then replays the schedule against a live flare_oneapid over real
// sockets on a (scaled) wall clock. One seed fully determines who
// connects when, with which efficiency, and for how long — so two runs
// against the same server configuration exercise identical workloads.
//
// Per session the generator connects, sends ClientInfo + an initial
// FlowStatsReport, and then ping-pongs: every received kAssignment is
// answered with a fresh stats report, so each flow contributes one e_u
// sample per BAI exactly like a femtocell's Statistics Reporter. Each
// assignment's turnaround (receive time minus the moment this session's
// current sample became available) is recorded; the distribution's
// p50/p95/p99 are the control plane's SLO numbers, dominated by the BAI
// wait (EXPERIMENTS.md maps them back to the paper's cadence).
// kOverload before a welcome counts the session as blocked — the
// admission controller's answer, measured from the client side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace flare {

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Total sessions to offer (churn max_arrivals).
  std::uint64_t sessions = 100;
  /// Poisson arrival rate and mean (lognormal) holding time, in
  /// *schedule* seconds — wall time divides both by time_scale.
  double arrival_rate_per_s = 10.0;
  double mean_hold_s = 2.0;
  double lognormal_sigma = 1.0;
  std::uint64_t seed = 1;
  /// Replay speedup: wall seconds = schedule seconds / time_scale.
  double time_scale = 1.0;
  /// Ladder offered by every session (Table III simulation ladder, bps).
  std::vector<double> ladder_bps = {100e3, 250e3, 500e3,
                                    1000e3, 2000e3, 3000e3};
  /// Per-session bits-per-RB efficiencies cycle through this list, so a
  /// deterministic mix of good and bad channels hits the solver. Values
  /// are reported as tx_bytes=e, rbs=8 => e_u = 8*e/8 = e, exact.
  std::vector<double> efficiencies = {80.0, 120.0, 160.0, 220.0};
  /// Abort the replay after this much wall time (hung-server guard).
  double max_wall_s = 120.0;
  /// Attach a trace context (svc/frame.h) to every stats report and
  /// record a client-side span per echoed assignment. Old daemons ignore
  /// nothing — the extension is opt-in per frame — but only a PR-10+
  /// daemon echoes srx/stx back.
  bool trace = false;
  /// Write the client-side spans as Chrome trace JSON here after the run
  /// (implies trace). tools/flare_trace merges this with the daemon's
  /// trace_json= output into one Perfetto timeline.
  std::string trace_json;
};

struct LoadGenResult {
  /// True when the replay completed (not aborted by max_wall_s) and
  /// every admitted session saw a clean lifecycle.
  bool completed = false;
  std::uint64_t attempted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;   // kOverload before welcome
  std::uint64_t departed = 0;  // clean kBye teardowns
  std::uint64_t assignments = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t protocol_errors = 0;
  /// Assignments that carried the matching trace-context echo (0 with
  /// tracing off or against a pre-extension daemon).
  std::uint64_t traced = 0;
  /// Echoes with a trace id we never sent / no longer expect.
  std::uint64_t trace_mismatches = 0;
  double wall_s = 0.0;
  /// Exact quantiles over every assignment's turnaround, microseconds
  /// (0 when no assignments were received).
  double turnaround_p50_us = 0.0;
  double turnaround_p95_us = 0.0;
  double turnaround_p99_us = 0.0;
  double blocking_rate = 0.0;  // blocked / attempted
  /// Offered session rate actually achieved, sessions per wall second.
  double session_rate_per_s = 0.0;

  /// Export as svc.oneapi.* gauges/counters for BenchJsonWriter /
  /// flare_report (metrics.gauges.svc.oneapi.assign_turnaround.p99_us is
  /// a default SLO watch).
  void ExportTo(MetricsRegistry* registry) const;
};

class LoadGenerator {
 public:
  explicit LoadGenerator(LoadGenOptions options);

  /// One precomputed lifecycle event (seconds on the schedule clock).
  struct Event {
    double t_s = 0.0;
    bool arrival = true;
    int session = 0;
  };

  /// Precompute the churned schedule (pure: no sockets touched). Exposed
  /// so tests can assert determinism without a server.
  std::vector<Event> BuildSchedule() const;

  /// Replay the schedule against the live server. Blocking; returns the
  /// measured result.
  LoadGenResult Run();

 private:
  LoadGenOptions options_;
};

}  // namespace flare
