// Length-prefixed frame layer for the networked OneAPI control plane.
//
// The in-simulator OneAPI exchange already speaks a strict key=value text
// codec (net/messages.h); this module wraps those payloads for a real TCP
// byte stream, where message boundaries must be explicit and every input
// byte is untrusted:
//
//   +----------------+------+-------------------+
//   | u32 LE length  | u8   | payload bytes     |
//   | (type+payload) | type | (length - 1 long) |
//   +----------------+------+-------------------+
//
// Client -> server frames carry the existing ClientInfo / FlowStatsReport
// encodings plus an empty Bye; server -> client frames carry the
// RateAssignment encoding, a Welcome admission ack, and a typed Overload
// reject — the admission controller's answer made visible on the wire
// instead of a silent close. Parsing is incremental (frames may arrive
// split or coalesced) and strict: a zero length, an oversized length or an
// unknown type poisons the stream (kError) and the owning connection must
// be dropped — there is no resynchronization on a binary framed stream.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flare {

enum class FrameType : std::uint8_t {
  kClientInfo = 1,   // client -> server: EncodeClientInfo payload
  kStatsReport = 2,  // client -> server: EncodeStatsReport payload
  kBye = 3,          // client -> server: empty payload, clean teardown
  kWelcome = 4,      // server -> client: EncodeWelcome admission ack
  kAssignment = 5,   // server -> client: EncodeRateAssignment payload
  kOverload = 6,     // server -> client: EncodeOverload typed reject
};

/// Hard cap on one frame's payload. Generous for key=value messages (a
/// 64-rung ladder encodes in well under 1 KiB) while bounding what a
/// hostile peer can make the server buffer for a single frame.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
};

/// Append one encoded frame to `out` (header + payload). Payloads longer
/// than kMaxFramePayload are truncated-by-contract: callers never build
/// them; an assert guards debug builds.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);
std::string EncodeFrame(FrameType type, std::string_view payload);

enum class FrameParseStatus {
  kNeedMore,  // buffer holds a partial frame; read more bytes
  kFrame,     // one frame extracted into *out and consumed from buffer
  kError,     // malformed stream (bad length / unknown type): drop the peer
};

/// Consume at most one complete frame from the front of `buffer`.
/// Call in a loop until kNeedMore. kError leaves the buffer untouched —
/// the stream is unrecoverable and the connection should be closed.
FrameParseStatus ParseFrame(std::string* buffer, Frame* out);

// --- Service-level payloads with no net/messages.h equivalent -------------

/// Welcome ack: the flow id the server admitted (echoed so a client can
/// detect id mismatches early).
std::string EncodeWelcome(std::uint64_t flow);
std::optional<std::uint64_t> DecodeWelcome(const std::string& payload);

/// Typed overload/reject frame. `reason` is a stable token
/// ("session_limit", "admission", "duplicate_flow", "malformed",
/// "shutdown"); `policy` names the admission policy when reason ==
/// "admission" (empty otherwise); `value` is the policy diagnostic
/// (AdmissionDecision::value; 0 when not applicable).
struct OverloadInfo {
  std::string reason;
  std::string policy;
  double value = 0.0;
};

std::string EncodeOverload(const OverloadInfo& info);
std::optional<OverloadInfo> DecodeOverload(const std::string& payload);

}  // namespace flare
