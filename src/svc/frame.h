// Length-prefixed frame layer for the networked OneAPI control plane.
//
// The in-simulator OneAPI exchange already speaks a strict key=value text
// codec (net/messages.h); this module wraps those payloads for a real TCP
// byte stream, where message boundaries must be explicit and every input
// byte is untrusted:
//
//   +----------------+------+-------------------+
//   | u32 LE length  | u8   | payload bytes     |
//   | (type+payload) | type | (length - 1 long) |
//   +----------------+------+-------------------+
//
// Client -> server frames carry the existing ClientInfo / FlowStatsReport
// encodings plus an empty Bye; server -> client frames carry the
// RateAssignment encoding, a Welcome admission ack, and a typed Overload
// reject — the admission controller's answer made visible on the wire
// instead of a silent close. Parsing is incremental (frames may arrive
// split or coalesced) and strict: a zero length, an oversized length or an
// unknown type poisons the stream (kError) and the owning connection must
// be dropped — there is no resynchronization on a binary framed stream.
//
// Trace-context extension. Bit 0x80 of the type byte marks an optional
// trailer appended after the text payload:
//
//   text-payload '\0' "trace=<16 hex>;ts=<i64>[;srx=<i64>;stx=<i64>]"
//
// carrying a client-chosen trace id and the client's send timestamp (µs,
// client clock); the server echoes both on the matching assignment and
// adds its own receive/transmit timestamps (µs, server clock) so an
// offline merger can align the two clocks. The extension is
// backward-compatible by construction: peers that never set the bit
// produce byte-identical frames to the pre-extension protocol, and the
// strictness asymmetry is deliberate — legacy frames keep today's strict
// rejection of trailing bytes (the text codec refuses them), while the
// extension block tolerates unknown keys and post-'\0' trailing bytes
// (flagged via Frame::unknown_ext, counted by the service) so future
// fields can ride along without breaking deployed peers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flare {

enum class FrameType : std::uint8_t {
  kClientInfo = 1,   // client -> server: EncodeClientInfo payload
  kStatsReport = 2,  // client -> server: EncodeStatsReport payload
  kBye = 3,          // client -> server: empty payload, clean teardown
  kWelcome = 4,      // server -> client: EncodeWelcome admission ack
  kAssignment = 5,   // server -> client: EncodeRateAssignment payload
  kOverload = 6,     // server -> client: EncodeOverload typed reject
};

/// Hard cap on one frame's payload. Generous for key=value messages (a
/// 64-rung ladder encodes in well under 1 KiB) while bounding what a
/// hostile peer can make the server buffer for a single frame.
inline constexpr std::size_t kMaxFramePayload = 64 * 1024;

/// Type-byte bit marking the trace-context trailer. The base frame type is
/// `type & ~kFrameTraceExtBit` and must still be a known FrameType.
inline constexpr std::uint8_t kFrameTraceExtBit = 0x80;

/// Optional per-request trace context carried in the frame trailer.
/// Timestamps are microseconds on the owning process's steady clock
/// (client_send_us: client clock; server_recv_us / server_send_us: server
/// clock, populated only on the echoed assignment).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::int64_t client_send_us = 0;
  std::int64_t server_recv_us = 0;
  std::int64_t server_send_us = 0;
};

struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
  /// Decoded trace-context trailer, when the frame carried one.
  std::optional<TraceContext> trace;
  /// True when an extension-bearing frame carried unknown ext keys or
  /// trailing bytes (tolerated; the service counts them).
  bool unknown_ext = false;
};

/// Append one encoded frame to `out` (header + payload). Payloads longer
/// than kMaxFramePayload are truncated-by-contract: callers never build
/// them; an assert guards debug builds. The `trace` overloads append the
/// trace-context trailer and set kFrameTraceExtBit; passing nullptr (or
/// using the base overload) encodes byte-identically to the
/// pre-extension protocol.
void AppendFrame(FrameType type, std::string_view payload, std::string* out);
void AppendFrame(FrameType type, std::string_view payload,
                 const TraceContext* trace, std::string* out);
std::string EncodeFrame(FrameType type, std::string_view payload);
std::string EncodeFrame(FrameType type, std::string_view payload,
                        const TraceContext* trace);

enum class FrameParseStatus {
  kNeedMore,  // buffer holds a partial frame; read more bytes
  kFrame,     // one frame extracted into *out and consumed from buffer
  kError,     // malformed stream (bad length / unknown type): drop the peer
};

/// Consume at most one complete frame from the front of `buffer`.
/// Call in a loop until kNeedMore. kError leaves the buffer untouched —
/// the stream is unrecoverable and the connection should be closed.
FrameParseStatus ParseFrame(std::string* buffer, Frame* out);

// --- Service-level payloads with no net/messages.h equivalent -------------

/// Welcome ack: the flow id the server admitted (echoed so a client can
/// detect id mismatches early).
std::string EncodeWelcome(std::uint64_t flow);
std::optional<std::uint64_t> DecodeWelcome(const std::string& payload);

/// Typed overload/reject frame. `reason` is a stable token
/// ("session_limit", "admission", "duplicate_flow", "malformed",
/// "shutdown"); `policy` names the admission policy when reason ==
/// "admission" (empty otherwise); `value` is the policy diagnostic
/// (AdmissionDecision::value; 0 when not applicable).
struct OverloadInfo {
  std::string reason;
  std::string policy;
  double value = 0.0;
};

std::string EncodeOverload(const OverloadInfo& info);
std::optional<OverloadInfo> DecodeOverload(const std::string& payload);

}  // namespace flare
