#include "svc/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>

#include "churn/session_churn.h"
#include "net/messages.h"
#include "obs/span_trace.h"
#include "sim/simulator.h"
#include "svc/frame.h"
#include "svc/request_trace.h"
#include "util/rng.h"
#include "util/time.h"

namespace flare {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int ConnectBlocking(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;  // assignment frames are tiny; don't batch them
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendFrame(int fd, FrameType type, std::string_view payload,
               const TraceContext* trace = nullptr) {
  const std::string frame = EncodeFrame(type, payload, trace);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Nearest-rank quantile over a sorted sample; 0 when empty.
double SortedQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t index = static_cast<std::size_t>(
      std::clamp(rank - 1.0, 0.0, static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

struct Client {
  int fd = -1;
  int session = -1;
  bool welcomed = false;
  std::string inbox;
  double efficiency = 0.0;
  /// When the sample the next assignment will consume became available.
  Clock::time_point sample_time;
  /// Trace context of the in-flight stats report, awaiting its echo.
  std::uint64_t pending_trace = 0;
  double pending_t0_us = 0.0;
  bool has_pending_trace = false;
};

}  // namespace

void LoadGenResult::ExportTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetCounter("svc.oneapi.loadgen.attempted").Add(attempted);
  registry->GetCounter("svc.oneapi.loadgen.admitted").Add(admitted);
  registry->GetCounter("svc.oneapi.loadgen.blocked").Add(blocked);
  registry->GetCounter("svc.oneapi.loadgen.departed").Add(departed);
  registry->GetCounter("svc.oneapi.loadgen.assignments").Add(assignments);
  registry->GetCounter("svc.oneapi.loadgen.connect_failures")
      .Add(connect_failures);
  registry->GetCounter("svc.oneapi.loadgen.protocol_errors")
      .Add(protocol_errors);
  registry->GetCounter("svc.oneapi.loadgen.traced").Add(traced);
  registry->GetCounter("svc.oneapi.loadgen.trace_mismatches")
      .Add(trace_mismatches);
  registry->GetGauge("svc.oneapi.assign_turnaround.p50_us")
      .Set(turnaround_p50_us);
  registry->GetGauge("svc.oneapi.assign_turnaround.p95_us")
      .Set(turnaround_p95_us);
  registry->GetGauge("svc.oneapi.assign_turnaround.p99_us")
      .Set(turnaround_p99_us);
  registry->GetGauge("svc.oneapi.blocking_rate").Set(blocking_rate);
  registry->GetGauge("svc.oneapi.session_rate_per_s").Set(session_rate_per_s);
  registry->GetGauge("svc.oneapi.loadgen.wall_s").Set(wall_s);
  registry->GetGauge("svc.oneapi.loadgen.completed").Set(completed ? 1 : 0);
}

LoadGenerator::LoadGenerator(LoadGenOptions options)
    : options_(std::move(options)) {}

std::vector<LoadGenerator::Event> LoadGenerator::BuildSchedule() const {
  std::vector<Event> events;
  Simulator sim;
  ChurnConfig config;
  config.enabled = true;
  config.arrival_process = ChurnProcess::kPoisson;
  config.arrival_rate_per_s = options_.arrival_rate_per_s;
  config.hold_process = ChurnProcess::kLognormal;
  config.mean_hold_s = options_.mean_hold_s;
  config.lognormal_sigma = options_.lognormal_sigma;
  config.max_arrivals = options_.sessions;

  int next_id = 0;
  SessionChurnEngine::Host host;
  host.spawn = [&](SessionKind) {
    const int id = next_id++;
    events.push_back(Event{ToSeconds(sim.Now()), true, id});
    return id;
  };
  host.destroy = [&](int id) {
    events.push_back(Event{ToSeconds(sim.Now()), false, id});
  };
  SessionChurnEngine engine(sim, config, host, Rng(options_.seed));
  engine.Start();
  // max_arrivals stops the arrival chain, so the event queue drains long
  // before this bound; it only guards against a degenerate config.
  sim.RunUntil(FromSeconds(1e9));
  return events;  // already time-ordered: the simulator emitted them so
}

LoadGenResult LoadGenerator::Run() {
  const std::vector<Event> schedule = BuildSchedule();
  LoadGenResult result;
  std::map<int, Client> clients;  // by session index
  std::vector<double> turnarounds_us;
  const Clock::time_point start = Clock::now();
  std::size_t next_event = 0;
  const double scale = options_.time_scale > 0.0 ? options_.time_scale : 1.0;
  bool aborted = false;

  // Client-side tracing: one span per echoed assignment, timestamps in
  // microseconds since `start` (this process's trace clock). flare_trace
  // aligns it to the daemon's clock via the srx/stx echoes.
  const bool tracing = options_.trace || !options_.trace_json.empty();
  SpanTracer tracer;
  tracer.set_default_pid(2);  // daemon records at pid 1
  const auto trace_now_us = [&start] {
    return std::chrono::duration<double, std::micro>(Clock::now() - start)
        .count();
  };
  std::uint64_t trace_counter = 0;

  const auto send_stats = [&](Client& client) {
    FlowStatsReport report;
    report.flow = static_cast<FlowId>(client.session) + 1;
    report.type = FlowType::kVideo;
    // rbs = 8 makes e_u = 8 * tx_bytes / rbs == tx_bytes exactly, so the
    // server's efficiency estimate equals `efficiency` with no rounding.
    report.tx_bytes = static_cast<std::uint64_t>(client.efficiency);
    report.rbs = 8;
    report.throughput_bps = client.efficiency * 8.0 * 1000.0;
    report.rb_utilization = 0.0;
    TraceContext ctx;
    const TraceContext* ctx_ptr = nullptr;
    if (tracing) {
      // Session in the high bits keeps ids unique across the run while
      // staying attributable at a glance.
      ctx.trace_id =
          (static_cast<std::uint64_t>(client.session + 1) << 32) |
          ++trace_counter;
      const double t0_us = trace_now_us();
      ctx.client_send_us = static_cast<std::int64_t>(t0_us);
      client.pending_trace = ctx.trace_id;
      client.pending_t0_us = t0_us;
      client.has_pending_trace = true;
      ctx_ptr = &ctx;
    }
    client.sample_time = Clock::now();
    return SendFrame(client.fd, FrameType::kStatsReport,
                     EncodeStatsReport(report), ctx_ptr);
  };

  const auto close_client = [&](Client& client) {
    if (client.fd >= 0) ::close(client.fd);
    client.fd = -1;
  };

  for (;;) {
    const double elapsed = SecondsSince(start);
    if (elapsed > options_.max_wall_s) {
      aborted = true;
      break;
    }

    // --- Fire due schedule events.
    while (next_event < schedule.size() &&
           schedule[next_event].t_s / scale <= elapsed) {
      const Event& event = schedule[next_event++];
      if (event.arrival) {
        result.attempted += 1;
        const int fd = ConnectBlocking(options_.host, options_.port);
        if (fd < 0) {
          result.connect_failures += 1;
          continue;
        }
        Client client;
        client.fd = fd;
        client.session = event.session;
        client.efficiency = options_.efficiencies.empty()
                                ? 100.0
                                : options_.efficiencies[static_cast<std::size_t>(
                                      event.session) %
                                                        options_.efficiencies
                                                            .size()];
        ClientInfo info;
        info.flow = static_cast<FlowId>(event.session) + 1;
        info.ladder_bps = options_.ladder_bps;
        if (!SendFrame(fd, FrameType::kClientInfo, EncodeClientInfo(info)) ||
            !send_stats(client)) {
          result.connect_failures += 1;
          close_client(client);
          continue;
        }
        clients[event.session] = std::move(client);
      } else {
        const auto it = clients.find(event.session);
        if (it != clients.end()) {
          if (it->second.fd >= 0) {
            SendFrame(it->second.fd, FrameType::kBye, "");
            close_client(it->second);
            result.departed += 1;
          }
          clients.erase(it);
        }
      }
    }

    if (next_event >= schedule.size() && clients.empty()) {
      result.completed = true;
      break;
    }

    // --- Wait for server frames or the next schedule deadline.
    std::vector<pollfd> pfds;
    std::vector<int> pfd_sessions;
    pfds.reserve(clients.size());
    for (const auto& [session, client] : clients) {
      if (client.fd < 0) continue;
      pfds.push_back(pollfd{client.fd, POLLIN, 0});
      pfd_sessions.push_back(session);
    }
    int timeout_ms = 20;
    if (next_event < schedule.size()) {
      const double due_in_s =
          schedule[next_event].t_s / scale - SecondsSince(start);
      timeout_ms = static_cast<int>(
          std::clamp(due_in_s * 1000.0, 0.0, 20.0));
    }
    if (!pfds.empty()) {
      ::poll(pfds.data(), pfds.size(), timeout_ms);
    } else if (timeout_ms > 0) {
      ::poll(nullptr, 0, timeout_ms);
    }

    // --- Drain readable sockets and dispatch frames.
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      const auto it = clients.find(pfd_sessions[i]);
      if (it == clients.end()) continue;
      Client& client = it->second;
      char buf[4096];
      const ssize_t n = ::recv(client.fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        // Server closed (shutdown or post-reject): a session that never
        // got past admission was counted at the kOverload frame already.
        close_client(client);
        clients.erase(it);
        continue;
      }
      client.inbox.append(buf, static_cast<std::size_t>(n));
      bool drop = false;
      for (;;) {
        Frame frame;
        const FrameParseStatus status = ParseFrame(&client.inbox, &frame);
        if (status == FrameParseStatus::kNeedMore) break;
        if (status == FrameParseStatus::kError) {
          result.protocol_errors += 1;
          drop = true;
          break;
        }
        if (frame.type == FrameType::kWelcome) {
          client.welcomed = true;
          result.admitted += 1;
        } else if (frame.type == FrameType::kAssignment) {
          result.assignments += 1;
          turnarounds_us.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        client.sample_time)
                  .count());
          if (tracing && frame.trace) {
            if (client.has_pending_trace &&
                frame.trace->trace_id == client.pending_trace) {
              const double t3_us = trace_now_us();
              client.has_pending_trace = false;
              result.traced += 1;
              std::ostringstream args;
              args << "{\"trace\":\"" << TraceIdHex(frame.trace->trace_id)
                   << "\",\"flow\":" << (client.session + 1)
                   << ",\"t0_us\":" << client.pending_t0_us
                   << ",\"t3_us\":" << t3_us
                   << ",\"srx_us\":" << frame.trace->server_recv_us
                   << ",\"stx_us\":" << frame.trace->server_send_us
                   << ",\"turnaround_us\":" << (t3_us - client.pending_t0_us)
                   << "}";
              tracer.CompleteSpan(
                  RequestLane(static_cast<FlowId>(client.session) + 1),
                  "client", "request", client.pending_t0_us,
                  t3_us - client.pending_t0_us, args.str());
            } else {
              result.trace_mismatches += 1;
            }
          }
          // Ping-pong: answer every assignment with a fresh stats report,
          // one e_u sample per BAI like the femtocell reporter.
          if (!send_stats(client)) {
            drop = true;
            break;
          }
        } else if (frame.type == FrameType::kOverload) {
          if (!client.welcomed) result.blocked += 1;
          drop = true;
          break;
        } else {
          result.protocol_errors += 1;
          drop = true;
          break;
        }
      }
      if (drop) {
        close_client(client);
        clients.erase(it);
      }
    }
  }

  for (auto& [session, client] : clients) close_client(client);
  clients.clear();

  result.wall_s = SecondsSince(start);
  if (aborted) result.completed = false;
  result.blocking_rate =
      result.attempted > 0
          ? static_cast<double>(result.blocked) /
                static_cast<double>(result.attempted)
          : 0.0;
  result.session_rate_per_s =
      result.wall_s > 0.0
          ? static_cast<double>(result.attempted) / result.wall_s
          : 0.0;
  std::sort(turnarounds_us.begin(), turnarounds_us.end());
  result.turnaround_p50_us = SortedQuantile(turnarounds_us, 0.50);
  result.turnaround_p95_us = SortedQuantile(turnarounds_us, 0.95);
  result.turnaround_p99_us = SortedQuantile(turnarounds_us, 0.99);
  if (!options_.trace_json.empty()) {
    tracer.SortMergedEvents();
    tracer.ExportJson(options_.trace_json);
  }
  return result;
}

}  // namespace flare
