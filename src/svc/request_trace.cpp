#include "svc/request_trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/flight_recorder.h"

namespace flare {
namespace {

/// Same bucket layout as the service's solve/tick histograms so stage
/// and end-to-end distributions are directly comparable.
const std::vector<double> kStageBounds = {10.0,    50.0,    100.0,
                                          500.0,   1000.0,  5000.0,
                                          10000.0, 50000.0, 100000.0};

const double kQuantiles[3] = {0.5, 0.95, 0.99};
const char* const kQuantileNames[3] = {"p50", "p95", "p99"};

std::string PhaseArgsJson(const RequestTiming& t, double total_us) {
  std::ostringstream out;
  out << "{\"trace\":\"" << TraceIdHex(t.ctx.trace_id) << "\",\"flow\":"
      << t.flow << ",\"recv_us\":" << t.recv_us
      << ",\"parse_us\":" << t.parse_us
      << ",\"queue_wait_us\":" << t.queue_wait_us
      << ",\"solve_us\":" << t.solve_us << ",\"encode_us\":" << t.encode_us
      << ",\"outbox_drain_us\":" << (t.end_us - t.send_us)
      << ",\"total_us\":" << total_us << ",\"cause\":"
      << JsonQuote(t.cause) << "}";
  return out.str();
}

}  // namespace

const char* const kRequestPhaseNames[kNumRequestPhases] = {
    "recv", "parse", "admit", "queue_wait", "solve", "encode", "outbox_drain"};

int RequestLane(FlowId flow) {
  // Lanes 8..63; below 8 is reserved for the fixed kLane* assignments.
  return 8 + static_cast<int>(static_cast<std::uint64_t>(flow) % 56);
}

std::string TraceIdHex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return buf;
}

RequestTracer::RequestTracer(MetricsRegistry* registry,
                             std::mutex* registry_mu, FlightRecorder* flight,
                             RequestTracerOptions options)
    : registry_(registry),
      registry_mu_(registry_mu),
      flight_(flight),
      options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()) {
  // pid 1 so the daemon's events survive a merge with a client trace that
  // also recorded at its own default pid.
  tracer_.set_default_pid(1);
  tracer_.SetClock([this] { return now_us(); });
}

double RequestTracer::now_us() const {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count()) /
         1e3;
}

void RequestTracer::RecordStage(const char* phase, double value_us) {
  std::lock_guard<std::mutex> lock(*registry_mu_);
  registry_
      ->GetHistogram(std::string("svc.oneapi.stage.") + phase + "_us",
                     kStageBounds)
      .Observe(value_us);
}

void RequestTracer::CountDroppedEvent() {
  std::lock_guard<std::mutex> lock(*registry_mu_);
  registry_->GetCounter("svc.oneapi.trace.dropped_events").Add();
}

void RequestTracer::OnAdmit(const TraceContext* ctx, FlowId flow,
                            double start_us, double recv_us,
                            double parse_start_us, double parse_us,
                            double admit_start_us, double admit_us,
                            bool admitted) {
  (void)parse_start_us;
  RecordStage("recv", recv_us);
  RecordStage("parse", parse_us);
  RecordStage("admit", admit_us);
  if (!CanRecord()) {
    CountDroppedEvent();
    return;
  }
  std::ostringstream args;
  args << "{\"flow\":" << flow << ",\"recv_us\":" << recv_us
       << ",\"parse_us\":" << parse_us << ",\"admit_us\":" << admit_us
       << ",\"admitted\":" << (admitted ? "true" : "false");
  if (ctx != nullptr) {
    args << ",\"trace\":\"" << TraceIdHex(ctx->trace_id) << "\"";
  }
  args << "}";
  const double end_us = admit_start_us + admit_us;
  tracer_.CompleteSpan(RequestLane(flow), "svc", "admit_request", start_us,
                       end_us - start_us, args.str());
}

void RequestTracer::OnSampleQueued(const RequestTiming& timing) {
  RecordStage("recv", timing.recv_us);
  RecordStage("parse", timing.parse_us);
}

void RequestTracer::OnAssignmentQueued(RequestTiming timing, int fd,
                                       std::uint64_t drain_watermark) {
  PendingDrain pending;
  pending.watermark = drain_watermark;
  pending.timing = std::move(timing);
  drains_[fd].push_back(std::move(pending));
}

void RequestTracer::OnAssignmentDropped(FlowId flow) {
  (void)flow;
  std::lock_guard<std::mutex> lock(*registry_mu_);
  registry_->GetCounter("svc.oneapi.trace.requests_dropped").Add();
}

void RequestTracer::OnConnFlushed(int fd, std::uint64_t drained_bytes,
                                  double now_us) {
  const auto it = drains_.find(fd);
  if (it == drains_.end()) return;
  std::deque<PendingDrain>& queue = it->second;
  while (!queue.empty() && queue.front().watermark <= drained_bytes) {
    RequestTiming timing = std::move(queue.front().timing);
    queue.pop_front();
    timing.end_us = now_us;
    FinalizeRequest(timing);
  }
  if (queue.empty()) drains_.erase(it);
}

void RequestTracer::OnConnClosed(int fd, std::uint64_t drained_bytes,
                                 double now_us) {
  OnConnFlushed(fd, drained_bytes, now_us);
  // Whatever never left the outbox never reached the client: discard.
  drains_.erase(fd);
}

void RequestTracer::FinalizeRequest(const RequestTiming& t) {
  finalized_.fetch_add(1, std::memory_order_relaxed);
  const double total_us = t.end_us - t.start_us;
  const double drain_us = t.end_us - t.send_us;
  RecordStage("queue_wait", t.queue_wait_us);
  RecordStage("solve", t.solve_us);
  RecordStage("encode", t.encode_us);
  RecordStage("outbox_drain", drain_us);
  {
    std::lock_guard<std::mutex> lock(*registry_mu_);
    registry_->GetCounter("svc.oneapi.trace.requests").Add();
  }

  // Worst-K window table, slowest first.
  const int k = std::max(1, options_.exemplar_k);
  auto pos = std::upper_bound(exemplars_.begin(), exemplars_.end(), total_us,
                              [](double lhs, const RequestTiming& rhs) {
                                return lhs > rhs.end_us - rhs.start_us;
                              });
  if (pos != exemplars_.end() ||
      exemplars_.size() < static_cast<std::size_t>(k)) {
    exemplars_.insert(pos, t);
    if (exemplars_.size() > static_cast<std::size_t>(k)) {
      exemplars_.pop_back();
    }
  }

  // 8 events per request (parent + 7 phases); budget them as a unit.
  if (tracer_.size() + 8 > options_.max_events) {
    CountDroppedEvent();
    return;
  }
  const int lane = RequestLane(t.flow);
  tracer_.CompleteSpan(lane, "svc", "request", t.start_us, total_us,
                       PhaseArgsJson(t, total_us));
  tracer_.CompleteSpan(lane, "svc.stage", "recv", t.start_us, t.recv_us);
  tracer_.CompleteSpan(lane, "svc.stage", "parse", t.parse_start_us,
                       t.parse_us);
  tracer_.CompleteSpan(lane, "svc.stage", "queue_wait", t.queued_at_us,
                       t.queue_wait_us);
  tracer_.CompleteSpan(lane, "svc.stage", "solve", t.solve_start_us,
                       t.solve_us);
  tracer_.CompleteSpan(lane, "svc.stage", "encode", t.encode_start_us,
                       t.encode_us);
  tracer_.CompleteSpan(lane, "svc.stage", "outbox_drain", t.send_us,
                       drain_us);
}

void RequestTracer::EndTick(double tick_start_us, double solve_start_us,
                            double solve_us, double tick_us,
                            std::size_t sessions, std::size_t assignments) {
  if (tracer_.size() + 2 <= options_.max_events) {
    std::ostringstream args;
    args << "{\"sessions\":" << sessions
         << ",\"assignments\":" << assignments << "}";
    tracer_.CompleteSpan(kLaneControl, "svc", "tick", tick_start_us, tick_us,
                         args.str());
    if (solve_us > 0.0) {
      tracer_.CompleteSpan(kLaneControl, "svc", "solve", solve_start_us,
                           solve_us);
    }
  }

  // Refresh the stage quantile gauges from the histograms so /metrics
  // and flare_top see the distribution without parsing buckets. Gauges
  // appear only once a stage has data (Quantile is NaN on empty).
  {
    std::lock_guard<std::mutex> lock(*registry_mu_);
    for (const char* phase : kRequestPhaseNames) {
      Histogram& hist = registry_->GetHistogram(
          std::string("svc.oneapi.stage.") + phase + "_us", kStageBounds);
      for (int q = 0; q < 3; ++q) {
        const double value = hist.Quantile(kQuantiles[q]);
        if (value != value) continue;  // NaN: no observations yet
        registry_
            ->GetGauge(std::string("svc.oneapi.stage.") + phase + "." +
                       kQuantileNames[q] + "_us")
            .Set(value);
      }
    }
  }

  if (++ticks_in_window_ >= std::max(1, options_.exemplar_window_ticks)) {
    FlushExemplars();
    ticks_in_window_ = 0;
  }
}

void RequestTracer::FlushExemplars() {
  if (flight_ != nullptr) {
    for (const RequestTiming& t : exemplars_) {
      const double total_us = t.end_us - t.start_us;
      flight_->Record(t.end_us / 1e6, "slow_request", t.flow, -1, total_us,
                      PhaseArgsJson(t, total_us));
    }
  }
  exemplars_.clear();
}

bool RequestTracer::ExportJson(const std::string& path) {
  FlushExemplars();
  tracer_.SortMergedEvents();
  return tracer_.ExportJson(path);
}

}  // namespace flare
