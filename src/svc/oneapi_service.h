// Standalone networked OneAPI control plane (ROADMAP item 2).
//
// OneApiService is the real-socket counterpart of net/oneapi_server: the
// same Algorithm 1 BAI loop (FlareRateController, default kBatchedSweep)
// and the same admission controller (churn/admission), but with sessions
// arriving as TCP connections instead of direct method calls. One
// background thread runs a netio EpollLoop carrying the listener, every
// session connection, and a timerfd that fires the periodic BAI tick; the
// public surface (Start/Stop/TriggerTick/counters) is thread-safe.
//
// Protocol (svc/frame.h framing over the net/messages.h codec):
//
//   client                               server
//   ------ kClientInfo (EncodeClientInfo) ----->   admission decision
//   <----- kWelcome  "flow=N"  ----------------    (or kOverload + close)
//   ------ kStatsReport (EncodeStatsReport) --->   per-BAI e_u sample
//   <----- kAssignment (EncodeRateAssignment) -    every BAI tick, fanned
//   ------ kBye ------------------------------->   clean teardown
//
// Semantics mirror OneApiServer::RunBai exactly — sessions iterate in
// ascending FlowId order, e_u = 8*tx_bytes/rbs, the same EWMA smoothing,
// skimming pins client_max_level to 0, gbr = rate * gbr_headroom — so an
// assignment stream observed on the wire is value-identical to an
// in-process run over the same schedule (tests/oneapi_service_test.cpp
// holds the two byte-equal through the shared codec).
//
// Overload behaviour is load-shedding, never latency collapse: arrivals
// beyond max_sessions or rejected by the admission policy get a typed
// kOverload frame and a graceful close (both counted); per-connection
// outboxes are bounded, so a slow client loses its assignment frames
// (counted) instead of stalling the BAI tick for everyone else.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "churn/admission.h"
#include "core/rate_controller.h"
#include "obs/metrics.h"
#include "svc/request_trace.h"

namespace flare {

class FlightRecorder;
class TelemetryServer;

struct OneApiServiceOptions {
  /// Loopback by default — this is an operator control-plane port.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the real one from port().
  std::uint16_t port = 0;
  /// BAI period in wall-clock milliseconds; 0 disables the timer (ticks
  /// then come only from TriggerTick(), which deterministic tests use).
  int bai_ms = 1000;
  /// Algorithm 1 parameters. The batched SoA solver is the service
  /// default: it is bit-exact vs the sweep and built for many flows.
  FlareParams params = BatchedParams();
  static FlareParams BatchedParams() {
    FlareParams params;
    params.solver = SolverMode::kBatchedSweep;
    return params;
  }
  double gbr_headroom = 1.1;
  /// EWMA weight of the newest bits-per-RB sample (see OneApiConfig).
  double efficiency_smoothing = 0.1;
  /// Cell RB budget: rb_rate = num_rbs * 1000 (1 ms TTIs).
  int num_rbs = 50;
  /// Data flows sharing the cell (the PCRF answer in-simulator; a static
  /// knob for the standalone daemon).
  int n_data_flows = 0;
  /// Connect-time bits-per-RB estimate for admission, and the BAI
  /// observation fallback before a session's first stats report (the
  /// in-simulator server reads the channel's nominal capacity here; the
  /// daemon has no channel, so the operator configures it).
  double default_bits_per_rb = 100.0;
  AdmissionConfig admission;
  /// Hard session cap ahead of the admission policy; 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Per-connection outbox cap: a session whose buffer is full loses its
  /// assignment frames (counted) instead of stalling the tick.
  std::size_t connection_buffer_limit = 256 * 1024;
  /// >0: shrink accepted sockets' SO_SNDBUF so tests can saturate a slow
  /// client without queueing megabytes in the kernel.
  int send_buffer_bytes = 0;
  /// Report solver wall-clock as 0 (byte-stable exports in tests).
  bool deterministic_timing = false;
  /// Optional live telemetry plane (not owned): every BAI tick publishes
  /// a snapshot, so /metrics, /healthz and flare_top work on the daemon
  /// exactly as they do on a simulation run.
  TelemetryServer* telemetry = nullptr;
  /// Scenario tag for telemetry/health output.
  std::string scenario = "oneapid";
  /// When non-empty, server-side request tracing (svc/request_trace.h) is
  /// on: every admitted request and BAI tick records a phase timeline,
  /// svc.oneapi.stage.* histograms + quantile gauges appear in the
  /// registry, and the Perfetto JSON is written here at Stop(). Empty
  /// (the default) keeps the request path trace-free: no clock reads, no
  /// spans, and wire bytes identical to the pre-tracing protocol.
  std::string trace_json;
  /// Tracer tuning (event cap, worst-K exemplar window).
  RequestTracerOptions trace;
  /// Slow-request exemplar sink (not owned; may be null). Only read when
  /// tracing is enabled.
  FlightRecorder* flight_recorder = nullptr;
};

class OneApiService {
 public:
  explicit OneApiService(OneApiServiceOptions options);
  ~OneApiService();
  OneApiService(const OneApiService&) = delete;
  OneApiService& operator=(const OneApiService&) = delete;

  /// Bind + listen + spawn the IO thread (and arm the BAI timer when
  /// bai_ms > 0). False when the port cannot be bound.
  bool Start();
  /// Graceful shutdown: every open session gets a kOverload
  /// reason=shutdown frame (best effort), connections close, the IO
  /// thread joins. Idempotent.
  void Stop();
  bool running() const;
  std::uint16_t port() const;

  /// Run one BAI tick on the IO thread and wait for it to finish.
  /// Deterministic tests drive the cadence with this (bai_ms = 0).
  void TriggerTick();

  /// Snapshot of the service registry (svc.oneapi.* instruments plus the
  /// admission controller's counters). Thread-safe.
  MetricsSnapshot SnapshotMetrics() const;

  // --- Thread-safe progress counters (tests/poll loops) -----------------
  std::uint64_t connections_accepted() const;
  std::uint64_t infos_received() const;
  std::uint64_t stats_received() const;
  std::uint64_t bais() const;
  std::uint64_t assignments_sent() const;
  std::uint64_t assignments_dropped() const;
  std::uint64_t admission_rejects() const;
  std::uint64_t overload_rejects() const;
  std::uint64_t sessions() const;
  /// Requests finalized by the tracer (0 when tracing is off). Like the
  /// other counters, safe from any thread.
  std::uint64_t traced_requests() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace flare
