// Per-request phase attribution for the networked OneAPI control plane.
//
// A RequestTracer turns the daemon's request lifecycle into three
// coordinated observability products, all keyed by the wire-level trace
// context (svc/frame.h):
//
//   1. Perfetto spans — every admitted request and BAI tick becomes a
//      phase timeline (recv, parse, admit, queue_wait, solve, encode,
//      outbox_drain) in a Chrome trace-event JSON file, mergeable with
//      the loadgen's client-side spans by tools/flare_trace.
//   2. Stage histograms — svc.oneapi.stage.<phase>_us histograms plus
//      derived p50/p95/p99 gauges refreshed each tick, so /metrics and
//      flare_top show where tail latency lives without a trace file.
//   3. Slow-request exemplars — a bounded worst-K table per window of
//      ticks, flushed into the flight recorder with the full phase
//      breakdown and the solver's DecisionCause, so a postmortem names
//      the offending stage of the slowest concrete requests.
//
// Threading model matches the service: every method runs on the daemon's
// single IO thread; the only shared state is the metrics registry, which
// is written under the service's metrics mutex (passed in). The disabled
// path is a null RequestTracer* at every call site — one predicted
// branch, no argument construction (bench_optimizer's
// BM_RequestTraceOverhead pins this down).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "lte/types.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "svc/frame.h"

namespace flare {

class FlightRecorder;

/// Request phases in timeline order. recv/parse/admit are observed as the
/// bytes arrive; queue_wait spans sample-landed -> solve-start; solve and
/// encode happen inside the BAI tick; outbox_drain ends when the encoded
/// assignment has left the user-space outbox.
inline constexpr int kNumRequestPhases = 7;
extern const char* const kRequestPhaseNames[kNumRequestPhases];

/// Absolute timestamps (µs on the tracer clock) and durations for one
/// traced request, filled in incrementally as the request moves through
/// the service. Lives in the session until the matching assignment is
/// queued, then in the tracer's per-connection drain queue.
struct RequestTiming {
  TraceContext ctx;
  FlowId flow = kInvalidFlow;
  double start_us = 0.0;  // ReadSome that completed the frame began
  double recv_us = 0.0;
  double parse_start_us = 0.0;
  double parse_us = 0.0;
  double queued_at_us = 0.0;  // sample stored, waiting for the tick
  double queue_wait_us = 0.0;
  double solve_start_us = 0.0;
  double solve_us = 0.0;
  double encode_start_us = 0.0;
  double encode_us = 0.0;
  double send_us = 0.0;  // assignment handed to the outbox
  double end_us = 0.0;   // outbox drained past the assignment
  const char* cause = "";
};

struct RequestTracerOptions {
  /// Hard cap on buffered trace events; past it spans are dropped and
  /// counted (svc.oneapi.trace.dropped_events) instead of growing memory.
  std::size_t max_events = 1'000'000;
  /// Worst-K exemplars kept per window.
  int exemplar_k = 4;
  /// Ticks per exemplar window; at each window edge the table is flushed
  /// into the flight recorder and reset.
  int exemplar_window_ticks = 64;
};

class RequestTracer {
 public:
  /// `registry` + `registry_mu` are the service's metrics plane (writes
  /// are taken under the mutex); `flight` receives slow-request
  /// exemplars (may be null). None are owned.
  RequestTracer(MetricsRegistry* registry, std::mutex* registry_mu,
                FlightRecorder* flight, RequestTracerOptions options);

  /// Microseconds since construction on the steady clock — the server
  /// side of the wire timestamps (TraceContext::server_*_us).
  double now_us() const;

  /// A client_info request finished its admission decision.
  void OnAdmit(const TraceContext* ctx, FlowId flow, double start_us,
               double recv_us, double parse_start_us, double parse_us,
               double admit_start_us, double admit_us, bool admitted);

  /// A traced stats sample was stored; recv/parse stage histograms are
  /// observed now, the rest when the request finalizes.
  void OnSampleQueued(const RequestTiming& timing);

  /// The encoded assignment for `timing` was queued on connection `fd`;
  /// finalization happens when the connection's cumulative flushed bytes
  /// reach `drain_watermark` (OnConnFlushed).
  void OnAssignmentQueued(RequestTiming timing, int fd,
                          std::uint64_t drain_watermark);

  /// The assignment was dropped (bounded outbox): the request will never
  /// complete on the wire; counted, no span.
  void OnAssignmentDropped(FlowId flow);

  /// Tick bookkeeping: one tick span, stage-quantile gauge refresh, and
  /// the exemplar window clock.
  void EndTick(double tick_start_us, double solve_start_us, double solve_us,
               double tick_us, std::size_t sessions, std::size_t assignments);

  /// The connection's cumulative flushed-byte count advanced; finalize
  /// every queued request whose watermark it passed.
  void OnConnFlushed(int fd, std::uint64_t drained_bytes, double now_us);
  /// Connection going away: drain anything matured, discard the rest.
  void OnConnClosed(int fd, std::uint64_t drained_bytes, double now_us);

  /// Safe from any thread (tests poll it while the IO thread traces).
  std::uint64_t finalized_requests() const {
    return finalized_.load(std::memory_order_relaxed);
  }

  /// Flush any remaining exemplars, sort, and write the Perfetto JSON.
  bool ExportJson(const std::string& path);

 private:
  struct PendingDrain {
    std::uint64_t watermark = 0;
    RequestTiming timing;
  };

  void FinalizeRequest(const RequestTiming& timing);
  void RecordStage(const char* phase, double value_us);
  bool CanRecord() const { return tracer_.size() < options_.max_events; }
  void CountDroppedEvent();
  void FlushExemplars();

  MetricsRegistry* registry_;
  std::mutex* registry_mu_;
  FlightRecorder* flight_;
  RequestTracerOptions options_;
  SpanTracer tracer_;
  std::chrono::steady_clock::time_point epoch_;
  std::map<int, std::deque<PendingDrain>> drains_;
  std::atomic<std::uint64_t> finalized_{0};
  int ticks_in_window_ = 0;
  /// Worst-K finalized requests this window, slowest first.
  std::vector<RequestTiming> exemplars_;
};

/// Static lane assignment for request spans: requests for one flow never
/// overlap (the protocol is ping-pong per session), so hashing the flow
/// onto a small lane set keeps the Perfetto view compact while mostly
/// avoiding cross-flow overlap.
int RequestLane(FlowId flow);

/// 16-hex-digit trace id rendering, the wire and args-JSON form.
std::string TraceIdHex(std::uint64_t trace_id);

}  // namespace flare
