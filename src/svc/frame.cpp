#include "svc/frame.h"

#include <cassert>
#include <cstring>
#include <map>
#include <sstream>

namespace flare {
namespace {

constexpr std::size_t kHeaderBytes = 4;  // u32 LE length

bool KnownType(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kClientInfo) &&
         raw <= static_cast<std::uint8_t>(FrameType::kOverload);
}

// Minimal key=value;key=value split matching the net/messages.h grammar:
// strict, no empty fields, no empty keys. Returns false on malformed input.
bool SplitFields(const std::string& payload,
                 std::map<std::string, std::string>* out) {
  out->clear();
  if (payload.empty()) return true;
  std::size_t start = 0;
  while (start <= payload.size()) {
    std::size_t end = payload.find(';', start);
    if (end == std::string::npos) end = payload.size();
    std::string field = payload.substr(start, end - start);
    std::size_t eq = field.find('=');
    if (field.empty() || eq == std::string::npos || eq == 0) return false;
    (*out)[field.substr(0, eq)] = field.substr(eq + 1);
    start = end + 1;
    if (end == payload.size()) break;
  }
  return true;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  assert(payload.size() <= kMaxFramePayload);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  char header[kHeaderBytes + 1];
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  header[4] = static_cast<char>(static_cast<std::uint8_t>(type));
  out->append(header, kHeaderBytes + 1);
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + 1 + payload.size());
  AppendFrame(type, payload, &out);
  return out;
}

FrameParseStatus ParseFrame(std::string* buffer, Frame* out) {
  if (buffer->size() < kHeaderBytes) return FrameParseStatus::kNeedMore;
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(buffer->data());
  const std::uint32_t length = static_cast<std::uint32_t>(b[0]) |
                               (static_cast<std::uint32_t>(b[1]) << 8) |
                               (static_cast<std::uint32_t>(b[2]) << 16) |
                               (static_cast<std::uint32_t>(b[3]) << 24);
  if (length == 0 || length > kMaxFramePayload + 1) {
    return FrameParseStatus::kError;
  }
  if (buffer->size() < kHeaderBytes + length) return FrameParseStatus::kNeedMore;
  const std::uint8_t raw_type = b[kHeaderBytes];
  if (!KnownType(raw_type)) return FrameParseStatus::kError;
  out->type = static_cast<FrameType>(raw_type);
  out->payload.assign(*buffer, kHeaderBytes + 1, length - 1);
  buffer->erase(0, kHeaderBytes + length);
  return FrameParseStatus::kFrame;
}

std::string EncodeWelcome(std::uint64_t flow) {
  return "flow=" + std::to_string(flow);
}

std::optional<std::uint64_t> DecodeWelcome(const std::string& payload) {
  std::map<std::string, std::string> fields;
  if (!SplitFields(payload, &fields)) return std::nullopt;
  auto it = fields.find("flow");
  if (it == fields.end() || it->second.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

std::string EncodeOverload(const OverloadInfo& info) {
  // map-ordered like net/messages.cpp: policy < reason < value.
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!first) out << ';';
    out << key << '=' << value;
    first = false;
  };
  emit("policy", info.policy);
  emit("reason", info.reason);
  emit("value", FormatDouble(info.value));
  return out.str();
}

std::optional<OverloadInfo> DecodeOverload(const std::string& payload) {
  std::map<std::string, std::string> fields;
  if (!SplitFields(payload, &fields)) return std::nullopt;
  auto reason = fields.find("reason");
  if (reason == fields.end() || reason->second.empty()) return std::nullopt;
  OverloadInfo info;
  info.reason = reason->second;
  auto policy = fields.find("policy");
  if (policy != fields.end()) info.policy = policy->second;
  auto value = fields.find("value");
  if (value != fields.end()) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(value->second.c_str(), &end);
    if (errno != 0 || end == value->second.c_str() || *end != '\0') {
      return std::nullopt;
    }
    info.value = v;
  }
  return info;
}

}  // namespace flare
