#include "svc/frame.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace flare {
namespace {

constexpr std::size_t kHeaderBytes = 4;  // u32 LE length

bool KnownType(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kClientInfo) &&
         raw <= static_cast<std::uint8_t>(FrameType::kOverload);
}

// Minimal key=value;key=value split matching the net/messages.h grammar:
// strict, no empty fields, no empty keys. Returns false on malformed input.
bool SplitFields(const std::string& payload,
                 std::map<std::string, std::string>* out) {
  out->clear();
  if (payload.empty()) return true;
  std::size_t start = 0;
  while (start <= payload.size()) {
    std::size_t end = payload.find(';', start);
    if (end == std::string::npos) end = payload.size();
    std::string field = payload.substr(start, end - start);
    std::size_t eq = field.find('=');
    if (field.empty() || eq == std::string::npos || eq == 0) return false;
    (*out)[field.substr(0, eq)] = field.substr(eq + 1);
    start = end + 1;
    if (end == payload.size()) break;
  }
  return true;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

bool ParseI64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = static_cast<std::int64_t>(value);
  return true;
}

bool ParseHex64(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

void AppendTraceTrailer(const TraceContext& trace, std::string* out) {
  char id[17];
  std::snprintf(id, sizeof(id), "%016llx",
                static_cast<unsigned long long>(trace.trace_id));
  out->push_back('\0');
  out->append("trace=");
  out->append(id);
  out->append(";ts=");
  out->append(std::to_string(trace.client_send_us));
  if (trace.server_recv_us != 0 || trace.server_send_us != 0) {
    out->append(";srx=");
    out->append(std::to_string(trace.server_recv_us));
    out->append(";stx=");
    out->append(std::to_string(trace.server_send_us));
  }
}

// Parse the extension block (bytes after the first '\0'). Known keys are
// strict — a frame that claims to carry a trace context but mangles it is
// a protocol violation, same as a mangled length. Everything else
// (unknown keys, field syntax noise, bytes past a second '\0') is the
// forward-compatibility surface: tolerated and flagged.
bool ParseTraceExt(std::string ext, TraceContext* trace, bool* unknown_ext) {
  const std::size_t nul = ext.find('\0');
  if (nul != std::string::npos) {
    ext.resize(nul);
    *unknown_ext = true;
  }
  bool have_trace = false;
  std::size_t start = 0;
  while (start <= ext.size()) {
    std::size_t end = ext.find(';', start);
    if (end == std::string::npos) end = ext.size();
    const std::string field = ext.substr(start, end - start);
    const std::size_t eq = field.find('=');
    if (field.empty() || eq == std::string::npos || eq == 0) {
      if (!field.empty()) *unknown_ext = true;
      start = end + 1;
      if (end == ext.size()) break;
      continue;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "trace") {
      if (!ParseHex64(value, &trace->trace_id)) return false;
      have_trace = true;
    } else if (key == "ts") {
      if (!ParseI64(value, &trace->client_send_us)) return false;
    } else if (key == "srx") {
      if (!ParseI64(value, &trace->server_recv_us)) return false;
    } else if (key == "stx") {
      if (!ParseI64(value, &trace->server_send_us)) return false;
    } else {
      *unknown_ext = true;
    }
    start = end + 1;
    if (end == ext.size()) break;
  }
  return have_trace;
}

}  // namespace

void AppendFrame(FrameType type, std::string_view payload, std::string* out) {
  AppendFrame(type, payload, nullptr, out);
}

void AppendFrame(FrameType type, std::string_view payload,
                 const TraceContext* trace, std::string* out) {
  std::string body(payload);
  if (trace != nullptr) AppendTraceTrailer(*trace, &body);
  assert(body.size() <= kMaxFramePayload);
  const std::uint32_t length = static_cast<std::uint32_t>(body.size()) + 1;
  char header[kHeaderBytes + 1];
  header[0] = static_cast<char>(length & 0xff);
  header[1] = static_cast<char>((length >> 8) & 0xff);
  header[2] = static_cast<char>((length >> 16) & 0xff);
  header[3] = static_cast<char>((length >> 24) & 0xff);
  const std::uint8_t raw = static_cast<std::uint8_t>(type) |
                           (trace != nullptr ? kFrameTraceExtBit : 0);
  header[4] = static_cast<char>(raw);
  out->append(header, kHeaderBytes + 1);
  out->append(body.data(), body.size());
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  return EncodeFrame(type, payload, nullptr);
}

std::string EncodeFrame(FrameType type, std::string_view payload,
                        const TraceContext* trace) {
  std::string out;
  out.reserve(kHeaderBytes + 1 + payload.size() + (trace != nullptr ? 48 : 0));
  AppendFrame(type, payload, trace, &out);
  return out;
}

FrameParseStatus ParseFrame(std::string* buffer, Frame* out) {
  if (buffer->size() < kHeaderBytes) return FrameParseStatus::kNeedMore;
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(buffer->data());
  const std::uint32_t length = static_cast<std::uint32_t>(b[0]) |
                               (static_cast<std::uint32_t>(b[1]) << 8) |
                               (static_cast<std::uint32_t>(b[2]) << 16) |
                               (static_cast<std::uint32_t>(b[3]) << 24);
  if (length == 0 || length > kMaxFramePayload + 1) {
    return FrameParseStatus::kError;
  }
  if (buffer->size() < kHeaderBytes + length) return FrameParseStatus::kNeedMore;
  const std::uint8_t raw_type = b[kHeaderBytes];
  const bool has_ext = (raw_type & kFrameTraceExtBit) != 0;
  const std::uint8_t base_type =
      static_cast<std::uint8_t>(raw_type & ~kFrameTraceExtBit);
  if (!KnownType(base_type)) return FrameParseStatus::kError;
  out->type = static_cast<FrameType>(base_type);
  out->trace.reset();
  out->unknown_ext = false;
  std::string body(*buffer, kHeaderBytes + 1, length - 1);
  if (!has_ext) {
    // Legacy frame: the payload is handed to the strict text codec
    // verbatim, so trailing bytes stay rejected exactly as before the
    // extension existed.
    out->payload = std::move(body);
  } else {
    const std::size_t nul = body.find('\0');
    if (nul == std::string::npos) return FrameParseStatus::kError;
    TraceContext trace;
    if (!ParseTraceExt(body.substr(nul + 1), &trace, &out->unknown_ext)) {
      return FrameParseStatus::kError;
    }
    body.resize(nul);
    out->payload = std::move(body);
    out->trace = trace;
  }
  buffer->erase(0, kHeaderBytes + length);
  return FrameParseStatus::kFrame;
}

std::string EncodeWelcome(std::uint64_t flow) {
  return "flow=" + std::to_string(flow);
}

std::optional<std::uint64_t> DecodeWelcome(const std::string& payload) {
  std::map<std::string, std::string> fields;
  if (!SplitFields(payload, &fields)) return std::nullopt;
  auto it = fields.find("flow");
  if (it == fields.end() || it->second.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(it->second.c_str(), &end, 10);
  if (errno != 0 || end == it->second.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<std::uint64_t>(value);
}

std::string EncodeOverload(const OverloadInfo& info) {
  // map-ordered like net/messages.cpp: policy < reason < value.
  std::ostringstream out;
  bool first = true;
  auto emit = [&](const char* key, const std::string& value) {
    if (value.empty()) return;
    if (!first) out << ';';
    out << key << '=' << value;
    first = false;
  };
  emit("policy", info.policy);
  emit("reason", info.reason);
  emit("value", FormatDouble(info.value));
  return out.str();
}

std::optional<OverloadInfo> DecodeOverload(const std::string& payload) {
  std::map<std::string, std::string> fields;
  if (!SplitFields(payload, &fields)) return std::nullopt;
  auto reason = fields.find("reason");
  if (reason == fields.end() || reason->second.empty()) return std::nullopt;
  OverloadInfo info;
  info.reason = reason->second;
  auto policy = fields.find("policy");
  if (policy != fields.end()) info.policy = policy->second;
  auto value = fields.find("value");
  if (value != fields.end()) {
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(value->second.c_str(), &end);
    if (errno != 0 || end == value->second.c_str() || *end != '\0') {
      return std::nullopt;
    }
    info.value = v;
  }
  return info;
}

}  // namespace flare
