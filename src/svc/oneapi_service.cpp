#include "svc/oneapi_service.h"

#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "net/messages.h"
#include "netio/event_loop.h"
#include "netio/tcp.h"
#include "obs/telemetry_server.h"
#include "svc/frame.h"
#include "svc/request_trace.h"
#include "util/logging.h"

namespace flare {
namespace {

/// One TCP connection; `flow` stays kInvalidFlow until a ClientInfo is
/// admitted, after which the connection is the session's delivery path.
struct SessionConn {
  explicit SessionConn(int fd) : conn(fd) {}
  TcpConnection conn;
  FlowId flow = kInvalidFlow;
  /// Cumulative bytes ever handed to Queue(); `queued_bytes -
  /// pending_bytes()` is the cumulative flushed count the tracer uses as
  /// the outbox-drain watermark.
  std::uint64_t queued_bytes = 0;
  std::uint64_t drained_bytes() const {
    return queued_bytes - conn.pending_bytes();
  }
  void QueueFrame(const std::string& frame) {
    queued_bytes += frame.size();
    conn.Queue(frame);
  }
};

/// Per-admitted-flow state, mirroring OneApiServer::ClientEntry plus the
/// latest stats sample waiting for the next BAI tick.
struct Session {
  ClientInfo info;
  double smoothed_bits_per_rb = 0.0;  // 0 = no observation yet
  double pending_sample = 0.0;
  bool has_pending_sample = false;
  int conn_fd = -1;
  /// Trace context of the latest traced stats report, waiting to be
  /// echoed on (and attributed to) the next assignment. Lives in the
  /// session — not the tracer — because the wire echo works even when
  /// server-side tracing is off (a traced client against an untraced
  /// daemon still gets srx/stx back).
  std::optional<RequestTiming> pending_trace;
};

/// recv/parse timestamps for the frame currently being handled, threaded
/// from the read site into the frame handlers. All zero when tracing is
/// off.
struct FrameTiming {
  double read_start_us = 0.0;
  double recv_us = 0.0;
  double parse_start_us = 0.0;
};

const std::vector<double> kMicrosBounds = {10.0,    50.0,    100.0,
                                           500.0,   1000.0,  5000.0,
                                           10000.0, 50000.0, 100000.0};

OverloadInfo Overload(const char* reason, const char* policy = "",
                      double value = 0.0) {
  OverloadInfo info;
  info.reason = reason;
  info.policy = policy;
  info.value = value;
  return info;
}

}  // namespace

struct OneApiService::Impl {
  explicit Impl(OneApiServiceOptions opts)
      : options(std::move(opts)),
        controller(options.params),
        admission(options.admission),
        epoch(std::chrono::steady_clock::now()) {
    admission.SetObservers(&registry);
    if (!options.trace_json.empty()) {
      tracer = std::make_unique<RequestTracer>(
          &registry, &metrics_mu, options.flight_recorder, options.trace);
    }
  }

  OneApiServiceOptions options;
  EpollLoop loop;
  TcpListener listener;
  std::thread thread;
  bool started = false;
  int timer_fd = -1;

  // --- Loop-thread-only state -------------------------------------------
  std::map<int, std::unique_ptr<SessionConn>> conns;
  std::map<FlowId, Session> sessions;  // ascending FlowId, like OneApiServer
  FlareRateController controller;
  AdmissionController admission;
  /// Null when tracing is off: the request path then never reads a clock
  /// or records a span, and assignments to untraced clients are
  /// byte-identical to the pre-tracing protocol.
  std::unique_ptr<RequestTracer> tracer;
  /// Server clock origin for the srx/stx wire echo when the tracer is
  /// off (a traced client still deserves aligned timestamps back).
  std::chrono::steady_clock::time_point epoch;

  double NowUs() const {
    if (tracer != nullptr) return tracer->now_us();
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch)
                   .count()) /
           1e3;
  }

  /// Registry writes happen on the loop thread, snapshots from any
  /// thread; both sides take this (uncontended) mutex.
  mutable std::mutex metrics_mu;
  MetricsRegistry registry;

  // --- Thread-safe progress counters ------------------------------------
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> infos_received{0};
  std::atomic<std::uint64_t> stats_received{0};
  std::atomic<std::uint64_t> bais{0};
  std::atomic<std::uint64_t> assignments_sent{0};
  std::atomic<std::uint64_t> assignments_dropped{0};
  std::atomic<std::uint64_t> admission_rejects{0};
  std::atomic<std::uint64_t> overload_rejects{0};
  std::atomic<std::uint64_t> session_count{0};
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> blocked{0};

  void OnAccept();
  void OnConnIo(int fd, std::uint32_t events);
  void OnTimer();
  void ProcessInbox(SessionConn& sc, double read_start_us, double recv_us);
  void HandleClientInfo(SessionConn& sc, const Frame& frame,
                        const FrameTiming& timing);
  void HandleStats(SessionConn& sc, const Frame& frame,
                   const FrameTiming& timing);
  void SendOverloadAndClose(SessionConn& sc, const OverloadInfo& info);
  void NotifyFlushed(SessionConn& sc);
  void UpdateInterest(SessionConn& sc);
  void TeardownConn(int fd);
  void Tick();
  void PublishTelemetry();
  void UpdateBlockingRate();
  void ShutdownOnLoop();
};

void OneApiService::Impl::OnAccept() {
  for (;;) {
    const int fd = listener.Accept();
    if (fd < 0) return;
    if (options.send_buffer_bytes > 0) {
      // Tests shrink the kernel send buffer so a deliberately slow client
      // backs up into the bounded user-space outbox quickly.
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                   sizeof(options.send_buffer_bytes));
    }
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.connections").Add();
    }
    conns.emplace(fd, std::make_unique<SessionConn>(fd));
    loop.Watch(fd, EpollLoop::kReadable | EpollLoop::kError,
               [this, fd](std::uint32_t events) { OnConnIo(fd, events); });
  }
}

void OneApiService::Impl::OnConnIo(int fd, std::uint32_t events) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;
  SessionConn& sc = *it->second;

  if ((events & EpollLoop::kError) != 0) {
    TeardownConn(fd);
    return;
  }
  if ((events & EpollLoop::kReadable) != 0) {
    // One ReadSome may complete several frames; they share its duration
    // as their recv phase.
    const double read_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
    const IoStatus status = sc.conn.ReadSome();
    const double recv_us =
        tracer != nullptr ? tracer->now_us() - read_start_us : 0.0;
    ProcessInbox(sc, read_start_us, recv_us);
    if (conns.find(fd) == conns.end()) return;  // closed while processing
    if (status == IoStatus::kEof || status == IoStatus::kError) {
      // Flush any goodbye frames we just queued, then drop the peer.
      sc.conn.Flush();
      TeardownConn(fd);
      return;
    }
  }
  if ((events & EpollLoop::kWritable) != 0) {
    if (sc.conn.Flush() == IoStatus::kError) {
      TeardownConn(fd);
      return;
    }
    NotifyFlushed(sc);
  }
  if (sc.conn.FlushedAndDone()) {
    TeardownConn(fd);
    return;
  }
  UpdateInterest(sc);
}

void OneApiService::Impl::ProcessInbox(SessionConn& sc, double read_start_us,
                                       double recv_us) {
  const int fd = sc.conn.fd();
  for (;;) {
    FrameTiming timing;
    timing.read_start_us = read_start_us;
    timing.recv_us = recv_us;
    if (tracer != nullptr) timing.parse_start_us = tracer->now_us();
    Frame frame;
    const FrameParseStatus status = ParseFrame(&sc.conn.inbox(), &frame);
    if (status == FrameParseStatus::kNeedMore) return;
    if (status == FrameParseStatus::kError) {
      SendOverloadAndClose(sc, Overload("malformed"));
      return;
    }
    if (frame.unknown_ext) {
      // Extension-bearing frame with unknown keys/trailing bytes: the
      // forward-compatibility path, tolerated but visible.
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.frames_with_unknown_ext").Add();
    }
    switch (frame.type) {
      case FrameType::kClientInfo:
        HandleClientInfo(sc, frame, timing);
        break;
      case FrameType::kStatsReport:
        HandleStats(sc, frame, timing);
        break;
      case FrameType::kBye:
        TeardownConn(fd);
        return;
      default:
        // Server->client frame types are a protocol violation upstream.
        SendOverloadAndClose(sc, Overload("malformed"));
        return;
    }
    if (conns.find(fd) == conns.end()) return;
    if (sc.conn.close_after_flush()) return;  // reject queued: stop reading
  }
}

void OneApiService::Impl::HandleClientInfo(SessionConn& sc,
                                           const Frame& frame,
                                           const FrameTiming& timing) {
  const std::optional<ClientInfo> info = DecodeClientInfo(frame.payload);
  if (!info || info->ladder_bps.empty()) {
    SendOverloadAndClose(sc, Overload("malformed"));
    return;
  }
  infos_received.fetch_add(1, std::memory_order_relaxed);
  // Parse covers frame extraction + message decode; admit covers the
  // decision from here to the verdict.
  const double admit_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
  const double parse_us =
      tracer != nullptr ? admit_start_us - timing.parse_start_us : 0.0;
  const auto record_admit = [&](bool admitted) {
    if (tracer == nullptr) return;
    tracer->OnAdmit(frame.trace ? &*frame.trace : nullptr, info->flow,
                    timing.read_start_us, timing.recv_us,
                    timing.parse_start_us, parse_us, admit_start_us,
                    tracer->now_us() - admit_start_us, admitted);
  };

  if (sc.flow != kInvalidFlow) {
    // Mid-session refresh (new cost cap, clickstream state, ...): mirrors
    // OneApiServer::UpdateClientInfo — constraints update, ladder does not.
    if (info->flow != sc.flow) {
      SendOverloadAndClose(sc, Overload("malformed"));
      return;
    }
    const auto session = sessions.find(sc.flow);
    if (session != sessions.end()) {
      session->second.info.max_level = info->max_level;
      session->second.info.utility = info->utility;
      session->second.info.skimming = info->skimming;
    }
    return;
  }

  arrivals.fetch_add(1, std::memory_order_relaxed);
  if (sessions.count(info->flow) > 0) {
    blocked.fetch_add(1, std::memory_order_relaxed);
    overload_rejects.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.overload_rejects").Add();
    }
    UpdateBlockingRate();
    record_admit(false);
    SendOverloadAndClose(sc, Overload("duplicate_flow"));
    return;
  }
  if (options.max_sessions > 0 && sessions.size() >= options.max_sessions) {
    blocked.fetch_add(1, std::memory_order_relaxed);
    overload_rejects.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.overload_rejects").Add();
    }
    UpdateBlockingRate();
    record_admit(false);
    SendOverloadAndClose(
        sc, Overload("session_limit", "",
                     static_cast<double>(options.max_sessions)));
    return;
  }

  // Admission: candidate pinned at the lowest rung with the configured
  // connect-time efficiency estimate, exactly like OneApiServer.
  AdmissionRequest request;
  request.flow = info->flow;
  OptFlow candidate;
  candidate.ladder_bps = info->ladder_bps;
  candidate.utility = info->utility.value_or(options.params.utility);
  candidate.bits_per_rb = options.default_bits_per_rb;
  candidate.min_level = 0;
  candidate.max_level = 0;
  request.candidate = candidate;
  request.n_data_flows = options.n_data_flows;
  request.rb_rate = static_cast<double>(options.num_rbs) * 1000.0;

  AdmissionDecision decision;
  {
    std::lock_guard<std::mutex> lock(metrics_mu);
    decision = admission.Decide(request);
  }
  if (!decision.admit) {
    blocked.fetch_add(1, std::memory_order_relaxed);
    admission_rejects.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.admission_rejects").Add();
    }
    UpdateBlockingRate();
    record_admit(false);
    SendOverloadAndClose(
        sc, Overload("admission",
                     AdmissionPolicyName(options.admission.policy),
                     decision.value));
    return;
  }

  controller.AddFlow(info->flow, info->ladder_bps);
  candidate.max_level = static_cast<int>(candidate.ladder_bps.size()) - 1;
  admission.OnAdmitted(info->flow, candidate);
  Session session;
  session.info = *info;
  session.conn_fd = sc.conn.fd();
  sessions[info->flow] = std::move(session);
  sc.flow = info->flow;
  session_count.store(sessions.size(), std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(metrics_mu);
    registry.GetGauge("svc.oneapi.sessions")
        .Set(static_cast<double>(sessions.size()));
  }
  UpdateBlockingRate();
  record_admit(true);
  sc.QueueFrame(EncodeFrame(FrameType::kWelcome, EncodeWelcome(info->flow)));
  sc.conn.Flush();
  NotifyFlushed(sc);
  UpdateInterest(sc);
}

void OneApiService::Impl::HandleStats(SessionConn& sc, const Frame& frame,
                                      const FrameTiming& timing) {
  const std::optional<FlowStatsReport> report =
      DecodeStatsReport(frame.payload);
  if (!report) {
    SendOverloadAndClose(sc, Overload("malformed"));
    return;
  }
  if (sc.flow == kInvalidFlow || report->flow != sc.flow) {
    // Stats before admission, or for someone else's flow: drop the peer
    // rather than let it steer another session's capacity estimate.
    SendOverloadAndClose(sc, Overload("malformed"));
    return;
  }
  const auto it = sessions.find(sc.flow);
  if (it == sessions.end()) return;
  if (report->rbs > 0) {
    // e_u = 8 * b_u / n_u, the RB & Rate Trace efficiency sample. A
    // zero-RB report carries no signal (idle BAI) and leaves the EWMA
    // untouched, mirroring the in-simulator nominal-capacity fallback
    // (the smoothed value already is the standing estimate).
    it->second.pending_sample = static_cast<double>(report->tx_bytes) * 8.0 /
                                static_cast<double>(report->rbs);
    it->second.has_pending_sample = true;
  }
  if (frame.trace) {
    // Latest-wins, like the sample itself: a second traced report before
    // the tick supersedes the first (counted — its id will never echo).
    if (it->second.pending_trace) {
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetCounter("svc.oneapi.trace.superseded").Add();
    }
    const double now_us = NowUs();
    RequestTiming pending;
    pending.ctx = *frame.trace;
    pending.ctx.server_recv_us = static_cast<std::int64_t>(now_us);
    pending.flow = sc.flow;
    pending.start_us = timing.read_start_us;
    pending.recv_us = timing.recv_us;
    pending.parse_start_us = timing.parse_start_us;
    pending.parse_us =
        tracer != nullptr ? now_us - timing.parse_start_us : 0.0;
    pending.queued_at_us = now_us;
    it->second.pending_trace = pending;
    if (tracer != nullptr) tracer->OnSampleQueued(pending);
  }
  stats_received.fetch_add(1, std::memory_order_relaxed);
}

void OneApiService::Impl::SendOverloadAndClose(SessionConn& sc,
                                               const OverloadInfo& info) {
  sc.QueueFrame(EncodeFrame(FrameType::kOverload, EncodeOverload(info)));
  sc.conn.CloseAfterFlush();
  sc.conn.Flush();
  if (sc.conn.FlushedAndDone()) {
    TeardownConn(sc.conn.fd());
    return;
  }
  UpdateInterest(sc);
}

void OneApiService::Impl::NotifyFlushed(SessionConn& sc) {
  if (tracer == nullptr) return;
  tracer->OnConnFlushed(sc.conn.fd(), sc.drained_bytes(), tracer->now_us());
}

void OneApiService::Impl::UpdateInterest(SessionConn& sc) {
  std::uint32_t mask = EpollLoop::kReadable | EpollLoop::kError;
  if (sc.conn.pending_bytes() > 0) mask |= EpollLoop::kWritable;
  const int fd = sc.conn.fd();
  loop.Watch(fd, mask, [this, fd](std::uint32_t ev) { OnConnIo(fd, ev); });
}

void OneApiService::Impl::TeardownConn(int fd) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;
  if (tracer != nullptr) {
    tracer->OnConnClosed(fd, it->second->drained_bytes(), tracer->now_us());
  }
  const FlowId flow = it->second->flow;
  if (flow != kInvalidFlow) {
    const auto session = sessions.find(flow);
    if (session != sessions.end() && session->second.conn_fd == fd) {
      sessions.erase(session);
      controller.RemoveFlow(flow);
      admission.OnDeparted(flow);
      session_count.store(sessions.size(), std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(metrics_mu);
      registry.GetGauge("svc.oneapi.sessions")
          .Set(static_cast<double>(sessions.size()));
    }
  }
  loop.Unwatch(fd);
  conns.erase(it);  // TcpConnection destructor closes the fd
}

void OneApiService::Impl::UpdateBlockingRate() {
  const std::uint64_t total = arrivals.load(std::memory_order_relaxed);
  const std::uint64_t rejected = blocked.load(std::memory_order_relaxed);
  const double rate =
      total > 0 ? static_cast<double>(rejected) / static_cast<double>(total)
                : 0.0;
  std::lock_guard<std::mutex> lock(metrics_mu);
  registry.GetGauge("svc.oneapi.blocking_rate").Set(rate);
}

void OneApiService::Impl::OnTimer() {
  std::uint64_t expirations = 0;
  // Coalesce missed expirations into one tick — the BAI is a cadence, not
  // a work queue; catching up would just burn solves on stale samples.
  while (::read(timer_fd, &expirations, sizeof(expirations)) ==
         static_cast<ssize_t>(sizeof(expirations))) {
  }
  Tick();
}

void OneApiService::Impl::Tick() {
  const auto tick_start = std::chrono::steady_clock::now();
  const double tick_start_us = tracer != nullptr ? tracer->now_us() : 0.0;

  // --- Gather: ascending FlowId, the same iteration order (and the same
  // EWMA arithmetic) as OneApiServer::RunBai, so wire assignments match
  // an in-process run observation-for-observation.
  std::vector<FlowObservation> observations;
  observations.reserve(sessions.size());
  const double w = std::clamp(options.efficiency_smoothing, 0.0, 1.0);
  for (auto& [id, session] : sessions) {
    const double sample =
        session.has_pending_sample
            ? session.pending_sample
            : (session.smoothed_bits_per_rb > 0.0
                   ? session.smoothed_bits_per_rb
                   : options.default_bits_per_rb);
    session.has_pending_sample = false;
    session.smoothed_bits_per_rb =
        session.smoothed_bits_per_rb <= 0.0
            ? sample
            : (1.0 - w) * session.smoothed_bits_per_rb + w * sample;
    {
      std::lock_guard<std::mutex> lock(metrics_mu);
      admission.OnEstimate(id, session.smoothed_bits_per_rb);
    }

    FlowObservation obs;
    obs.id = id;
    obs.bits_per_rb = session.smoothed_bits_per_rb;
    obs.client_max_level = session.info.max_level;
    if (session.info.skimming) obs.client_max_level = 0;
    obs.utility = session.info.utility;
    observations.push_back(obs);
  }

  double solve_start_us = 0.0;
  double solve_span_us = 0.0;
  std::size_t n_assignments = 0;
  if (!observations.empty()) {
    const double rb_rate = static_cast<double>(options.num_rbs) * 1000.0;
    solve_start_us = tracer != nullptr ? tracer->now_us() : 0.0;
    const BaiDecision decision =
        controller.DecideBai(observations, options.n_data_flows, rb_rate);
    solve_span_us =
        tracer != nullptr ? tracer->now_us() - solve_start_us : 0.0;
    n_assignments = decision.assignments.size();

    // --- Fan out: one kAssignment frame per flow, bounded outbox. A full
    // buffer drops this BAI's frame for that client only (counted); the
    // tick itself never waits on anyone's socket.
    for (const RateAssignment& a : decision.assignments) {
      const auto session = sessions.find(a.id);
      if (session == sessions.end()) continue;
      const auto conn = conns.find(session->second.conn_fd);
      if (conn == conns.end()) continue;
      Session& sess = session->second;
      const double encode_start_us =
          tracer != nullptr && sess.pending_trace ? tracer->now_us() : 0.0;
      RateAssignmentMsg msg;
      msg.flow = a.id;
      msg.level = a.level;
      msg.rate_bps = a.rate_bps;
      msg.gbr_bps = a.rate_bps * options.gbr_headroom;
      // Echo the client's trace context (with our receive/transmit
      // stamps) on the assignment that answers it — whether or not
      // server-side tracing is on. Untraced clients get byte-identical
      // pre-extension frames.
      TraceContext echo;
      const TraceContext* echo_ptr = nullptr;
      if (sess.pending_trace) {
        echo = sess.pending_trace->ctx;
        echo.server_send_us = static_cast<std::int64_t>(NowUs());
        echo_ptr = &echo;
      }
      const std::string frame = EncodeFrame(
          FrameType::kAssignment, EncodeRateAssignment(msg), echo_ptr);
      SessionConn& sc = *conn->second;
      if (sc.conn.pending_bytes() + frame.size() >
          options.connection_buffer_limit) {
        assignments_dropped.fetch_add(1, std::memory_order_relaxed);
        if (tracer != nullptr && sess.pending_trace) {
          tracer->OnAssignmentDropped(a.id);
        }
        sess.pending_trace.reset();
        std::lock_guard<std::mutex> lock(metrics_mu);
        registry.GetCounter("svc.oneapi.assignments_dropped").Add();
        continue;
      }
      sc.QueueFrame(frame);
      if (tracer != nullptr && sess.pending_trace) {
        RequestTiming timing = *sess.pending_trace;
        const double send_us = tracer->now_us();
        timing.queue_wait_us = solve_start_us - timing.queued_at_us;
        timing.solve_start_us = solve_start_us;
        timing.solve_us = solve_span_us;
        timing.encode_start_us = encode_start_us;
        timing.encode_us = send_us - encode_start_us;
        timing.send_us = send_us;
        timing.cause = DecisionCauseName(a.cause);
        tracer->OnAssignmentQueued(std::move(timing), sc.conn.fd(),
                                   sc.queued_bytes);
      }
      // One echo per traced request: the context is consumed by the
      // assignment that answered it.
      sess.pending_trace.reset();
      assignments_sent.fetch_add(1, std::memory_order_relaxed);
      if (sc.conn.Flush() == IoStatus::kError) {
        TeardownConn(sc.conn.fd());
        continue;
      }
      NotifyFlushed(sc);
      UpdateInterest(sc);
    }

    const double solve_us =
        options.deterministic_timing
            ? 0.0
            : static_cast<double>(decision.solve_time.count()) / 1e3;
    std::lock_guard<std::mutex> lock(metrics_mu);
    registry.GetCounter("svc.oneapi.assignments")
        .Add(decision.assignments.size());
    registry.GetHistogram("svc.oneapi.solve_us", kMicrosBounds)
        .Observe(solve_us);
    registry.GetGauge("svc.oneapi.video_fraction")
        .Set(decision.video_fraction);
  }

  bais.fetch_add(1, std::memory_order_relaxed);
  const double tick_us =
      options.deterministic_timing
          ? 0.0
          : std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - tick_start)
                    .count() /
                1e3;
  {
    std::lock_guard<std::mutex> lock(metrics_mu);
    registry.GetCounter("svc.oneapi.bais").Add();
    registry.GetHistogram("svc.oneapi.tick_us", kMicrosBounds)
        .Observe(tick_us);
  }
  if (tracer != nullptr) {
    tracer->EndTick(tick_start_us, solve_start_us, solve_span_us,
                    tracer->now_us() - tick_start_us, sessions.size(),
                    n_assignments);
  }
  PublishTelemetry();
}

void OneApiService::Impl::PublishTelemetry() {
  if (options.telemetry == nullptr) return;
  TelemetrySnapshot snapshot;
  snapshot.scenario = options.scenario;
  snapshot.healthy = true;
  snapshot.cells = 1;
  snapshot.workers = 1;
  snapshot.epochs = bais.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(metrics_mu);
    snapshot.metrics.AbsorbFrom(registry);
  }
  options.telemetry->Publish(std::move(snapshot));
}

void OneApiService::Impl::ShutdownOnLoop() {
  for (auto& [fd, sc] : conns) {
    sc->QueueFrame(
        EncodeFrame(FrameType::kOverload, EncodeOverload(Overload("shutdown"))));
    sc->conn.Flush();  // best effort
    if (tracer != nullptr) {
      tracer->OnConnClosed(fd, sc->drained_bytes(), tracer->now_us());
    }
    loop.Unwatch(fd);
  }
  conns.clear();
  sessions.clear();
  if (timer_fd >= 0) {
    loop.Unwatch(timer_fd);
    ::close(timer_fd);
    timer_fd = -1;
  }
  loop.Unwatch(listener.fd());
  listener.Close();
}

OneApiService::OneApiService(OneApiServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

OneApiService::~OneApiService() { Stop(); }

bool OneApiService::Start() {
  if (impl_->started) return true;
  if (!impl_->loop.ok()) return false;
  if (!impl_->listener.Listen(impl_->options.bind_address,
                              impl_->options.port)) {
    return false;
  }
  // Initial watches are registered before the loop thread starts — the
  // one other moment Watch() is legal off the loop thread.
  impl_->loop.Watch(
      impl_->listener.fd(), EpollLoop::kReadable | EpollLoop::kError,
      [impl = impl_.get()](std::uint32_t) { impl->OnAccept(); });
  if (impl_->options.bai_ms > 0) {
    impl_->timer_fd =
        ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    if (impl_->timer_fd >= 0) {
      itimerspec spec{};
      spec.it_interval.tv_sec = impl_->options.bai_ms / 1000;
      spec.it_interval.tv_nsec =
          static_cast<long>(impl_->options.bai_ms % 1000) * 1000000L;
      spec.it_value = spec.it_interval;
      ::timerfd_settime(impl_->timer_fd, 0, &spec, nullptr);
      impl_->loop.Watch(impl_->timer_fd, EpollLoop::kReadable,
                        [impl = impl_.get()](std::uint32_t) {
                          impl->OnTimer();
                        });
    } else {
      FLOG_WARN << "OneApiService: timerfd_create failed; BAI timer off";
    }
  }
  impl_->thread = std::thread([impl = impl_.get()] {
    impl->loop.Run();
    impl->ShutdownOnLoop();
  });
  impl_->started = true;
  return true;
}

void OneApiService::Stop() {
  if (!impl_->started) return;
  impl_->loop.Stop();
  if (impl_->thread.joinable()) impl_->thread.join();
  impl_->started = false;
  // The loop thread is gone: the tracer is safe to touch from here.
  if (impl_->tracer != nullptr && !impl_->options.trace_json.empty()) {
    impl_->tracer->ExportJson(impl_->options.trace_json);
  }
}

bool OneApiService::running() const { return impl_->started; }

std::uint16_t OneApiService::port() const {
  return impl_->listener.bound_port();
}

void OneApiService::TriggerTick() {
  if (!impl_->started) return;
  // Run on the loop thread and wait: callers sequence deterministic BAIs
  // against their own socket IO. Must not race Stop() — a tick posted
  // after the loop exits would never complete.
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> future = done->get_future();
  impl_->loop.Post([impl = impl_.get(), done] {
    impl->Tick();
    done->set_value();
  });
  future.wait();
}

MetricsSnapshot OneApiService::SnapshotMetrics() const {
  std::lock_guard<std::mutex> lock(impl_->metrics_mu);
  return impl_->registry.Snapshot();
}

std::uint64_t OneApiService::connections_accepted() const {
  return impl_->connections_accepted.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::infos_received() const {
  return impl_->infos_received.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::stats_received() const {
  return impl_->stats_received.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::bais() const {
  return impl_->bais.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::assignments_sent() const {
  return impl_->assignments_sent.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::assignments_dropped() const {
  return impl_->assignments_dropped.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::admission_rejects() const {
  return impl_->admission_rejects.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::overload_rejects() const {
  return impl_->overload_rejects.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::sessions() const {
  return impl_->session_count.load(std::memory_order_relaxed);
}
std::uint64_t OneApiService::traced_requests() const {
  return impl_->tracer != nullptr ? impl_->tracer->finalized_requests() : 0;
}

}  // namespace flare
