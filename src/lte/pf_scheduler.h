// Legacy schedulers: proportional fair and round robin.
//
// Proportional fair ranks flows by instantaneous-rate / average-throughput
// and is the phase-2 ("legacy") scheduler inside both the femtocell
// two-phase scheduler and the ns-3 Priority Set Scheduler. Round robin is a
// simple baseline used in tests and examples.
#pragma once

#include "lte/scheduler.h"

namespace flare {

class PfScheduler final : public Scheduler {
 public:
  std::vector<SchedGrant> Allocate(std::vector<SchedCandidate>& candidates,
                                   int n_rbs, Rng& rng) override;
  std::string Name() const override { return "pf"; }
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::vector<SchedGrant> Allocate(std::vector<SchedCandidate>& candidates,
                                   int n_rbs, Rng& rng) override;
  std::string Name() const override { return "rr"; }

 private:
  std::size_t next_ = 0;  // rotating start index across TTIs
};

}  // namespace flare
