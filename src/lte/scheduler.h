// MAC downlink scheduler interface.
//
// Each TTI the cell builds one SchedCandidate per flow with pending data
// (and positive MBR credit) and asks the scheduler to distribute the TTI's
// resource blocks. Wideband CQI is assumed: every RB of a UE carries the
// same number of bytes in a given TTI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lte/flow_state.h"
#include "util/rng.h"

namespace flare {

struct SchedCandidate {
  FlowState* flow = nullptr;
  /// Bytes one RB carries for this UE this TTI (from its I_TBS).
  std::uint32_t bytes_per_rb = 0;
  /// Upper bound on bytes the flow may receive this TTI
  /// (min of queue and MBR credit).
  std::uint64_t max_bytes = 0;
};

struct SchedGrant {
  FlowState* flow = nullptr;
  int rbs = 0;
  std::uint64_t bytes = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Distribute `n_rbs` resource blocks over `candidates`. Grants must not
  /// exceed each candidate's max_bytes (except for the final partially
  /// filled RB) and the total RB count must not exceed n_rbs.
  virtual std::vector<SchedGrant> Allocate(
      std::vector<SchedCandidate>& candidates, int n_rbs, Rng& rng) = 0;

  virtual std::string Name() const = 0;
};

/// RBs needed to move `bytes` at `bytes_per_rb` per RB (ceiling division).
int RbsForBytes(std::uint64_t bytes, std::uint32_t bytes_per_rb);

/// Shared helper: proportional-fair allocation of up to `n_rbs` RBs over
/// the candidate list, skipping candidates whose `max_bytes` is exhausted
/// by earlier grants in `grants`. Appends to `grants` and returns RBs used.
int ProportionalFairPass(std::vector<SchedCandidate>& candidates, int n_rbs,
                         std::vector<SchedGrant>& grants);

}  // namespace flare
