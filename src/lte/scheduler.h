// MAC downlink scheduler interface.
//
// Each TTI the cell builds one SchedCandidate per flow with pending data
// (and positive MBR credit) and asks the scheduler to distribute the TTI's
// resource blocks. Wideband CQI is assumed: every RB of a UE carries the
// same number of bytes in a given TTI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lte/flow_state.h"
#include "util/rng.h"

namespace flare {

struct SchedCandidate {
  FlowState* flow = nullptr;
  /// Bytes one RB carries for this UE this TTI (from its I_TBS).
  std::uint32_t bytes_per_rb = 0;
  /// Upper bound on bytes the flow may receive this TTI
  /// (min of queue and MBR credit).
  std::uint64_t max_bytes = 0;
};

struct SchedGrant {
  FlowState* flow = nullptr;
  int rbs = 0;
  std::uint64_t bytes = 0;
};

/// How the last Allocate split the TTI's RBs between its scheduling
/// phases. Single-phase schedulers report everything as `rbs_shared`.
struct SchedTtiStats {
  int rbs_priority = 0;  // GBR / priority-set phase
  int rbs_shared = 0;    // PF / round-robin (shared) phase
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Distribute `n_rbs` resource blocks over `candidates`. Grants must not
  /// exceed each candidate's max_bytes (except for the final partially
  /// filled RB), the total RB count must not exceed n_rbs, and each flow
  /// appears in at most one grant (two-phase schedulers coalesce a flow's
  /// phase-1 and phase-2 service into a single aggregate grant).
  virtual std::vector<SchedGrant> Allocate(
      std::vector<SchedCandidate>& candidates, int n_rbs, Rng& rng) = 0;

  virtual std::string Name() const = 0;

  /// Phase breakdown of the most recent Allocate call.
  const SchedTtiStats& tti_stats() const { return tti_stats_; }

 protected:
  SchedTtiStats tti_stats_;
};

/// RBs needed to move `bytes` at `bytes_per_rb` per RB (ceiling division).
int RbsForBytes(std::uint64_t bytes, std::uint32_t bytes_per_rb);

/// Shared helper: proportional-fair allocation of up to `n_rbs` RBs over
/// the candidate list, skipping candidates whose `max_bytes` is exhausted
/// by earlier grants in `grants`. Appends to `grants` and returns RBs used.
int ProportionalFairPass(std::vector<SchedCandidate>& candidates, int n_rbs,
                         std::vector<SchedGrant>& grants);

/// Merge grants that name the same flow (summing RBs and bytes), keeping
/// first-appearance order. Two-phase schedulers call this so a flow served
/// in both phases still yields exactly one grant.
void CoalesceGrants(std::vector<SchedGrant>& grants);

}  // namespace flare
