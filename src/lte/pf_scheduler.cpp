#include "lte/pf_scheduler.h"

#include <algorithm>
#include <unordered_map>

namespace flare {

int RbsForBytes(std::uint64_t bytes, std::uint32_t bytes_per_rb) {
  if (bytes == 0 || bytes_per_rb == 0) return 0;
  return static_cast<int>((bytes + bytes_per_rb - 1) / bytes_per_rb);
}

int ProportionalFairPass(std::vector<SchedCandidate>& candidates, int n_rbs,
                         std::vector<SchedGrant>& grants) {
  if (n_rbs <= 0) return 0;

  std::unordered_map<const FlowState*, std::uint64_t> already;
  for (const SchedGrant& g : grants) already[g.flow] += g.bytes;

  // Wideband CQI: the PF metric of a flow is constant within the TTI, so a
  // single descending sort followed by greedy filling is exact.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& ca = candidates[a];
    const auto& cb = candidates[b];
    const double ma = static_cast<double>(ca.bytes_per_rb) /
                      std::max(ca.flow->pf_avg_bps, 1e-9);
    const double mb = static_cast<double>(cb.bytes_per_rb) /
                      std::max(cb.flow->pf_avg_bps, 1e-9);
    if (ma != mb) return ma > mb;
    return ca.flow->id < cb.flow->id;  // deterministic tie-break
  });

  int used = 0;
  for (std::size_t idx : order) {
    if (used >= n_rbs) break;
    SchedCandidate& c = candidates[idx];
    if (c.bytes_per_rb == 0) continue;
    const std::uint64_t got = already[c.flow];
    if (got >= c.max_bytes) continue;
    const std::uint64_t want = c.max_bytes - got;
    const int rbs = std::min(RbsForBytes(want, c.bytes_per_rb), n_rbs - used);
    if (rbs <= 0) continue;
    const std::uint64_t bytes = std::min<std::uint64_t>(
        want, static_cast<std::uint64_t>(rbs) * c.bytes_per_rb);
    grants.push_back(SchedGrant{c.flow, rbs, bytes});
    already[c.flow] += bytes;
    used += rbs;
  }
  return used;
}

void CoalesceGrants(std::vector<SchedGrant>& grants) {
  std::vector<SchedGrant> merged;
  merged.reserve(grants.size());
  std::unordered_map<const FlowState*, std::size_t> index;
  for (const SchedGrant& g : grants) {
    const auto [it, inserted] = index.emplace(g.flow, merged.size());
    if (inserted) {
      merged.push_back(g);
    } else {
      merged[it->second].rbs += g.rbs;
      merged[it->second].bytes += g.bytes;
    }
  }
  grants = std::move(merged);
}

std::vector<SchedGrant> PfScheduler::Allocate(
    std::vector<SchedCandidate>& candidates, int n_rbs, Rng& /*rng*/) {
  std::vector<SchedGrant> grants;
  tti_stats_ = SchedTtiStats{};
  tti_stats_.rbs_shared = ProportionalFairPass(candidates, n_rbs, grants);
  return grants;
}

std::vector<SchedGrant> RoundRobinScheduler::Allocate(
    std::vector<SchedCandidate>& candidates, int n_rbs, Rng& /*rng*/) {
  std::vector<SchedGrant> grants;
  tti_stats_ = SchedTtiStats{};
  if (candidates.empty() || n_rbs <= 0) return grants;

  // Rotate the starting flow each TTI, then hand out RBs one flow at a
  // time in equal chunks until RBs or demand run out.
  const std::size_t n = candidates.size();
  next_ %= n;
  int used = 0;
  std::vector<std::uint64_t> granted(n, 0);
  bool progress = true;
  while (used < n_rbs && progress) {
    progress = false;
    for (std::size_t k = 0; k < n && used < n_rbs; ++k) {
      SchedCandidate& c = candidates[(next_ + k) % n];
      auto& got = granted[(next_ + k) % n];
      if (c.bytes_per_rb == 0 || got >= c.max_bytes) continue;
      const std::uint64_t bytes = std::min<std::uint64_t>(
          c.max_bytes - got, c.bytes_per_rb);
      grants.push_back(SchedGrant{c.flow, 1, bytes});
      got += bytes;
      ++used;
      progress = true;
    }
  }
  ++next_;
  // One grant was pushed per RB; collapse to one grant per flow.
  CoalesceGrants(grants);
  tti_stats_.rbs_shared = used;
  return grants;
}

}  // namespace flare
