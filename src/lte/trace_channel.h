// Trace-driven channels: record a channel's iTbs-versus-time into a CSV
// trace and play traces back as a ChannelModel.
//
// Trace-driven evaluation is the workhorse of HAS research (drive every
// scheme over the *same* recorded channel); the paper's own "trace based"
// fading model is the same idea one layer down. Format: two CSV columns,
// `t_s,itbs`, strictly increasing times.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lte/channel.h"

namespace flare {

class Simulator;

/// One trace: (time, iTbs) steps; the value holds until the next entry.
using ItbsTrace = std::vector<std::pair<double, int>>;

/// Write a trace as CSV. Returns false if the file cannot be opened.
bool SaveItbsTrace(const std::string& path, const ItbsTrace& trace);

/// Parse a trace CSV; nullopt on malformed content (non-numeric fields,
/// non-increasing times, empty file). A header row "t_s,itbs" is allowed.
std::optional<ItbsTrace> LoadItbsTrace(const std::string& path);

/// Plays a trace back as a step function of time. When `loop` is set the
/// trace repeats with period equal to its last timestamp; otherwise the
/// final value holds forever.
class TraceFileChannel final : public ChannelModel {
 public:
  explicit TraceFileChannel(ItbsTrace trace, bool loop = false);

  int ItbsAt(SimTime now) override;

  const ItbsTrace& trace() const { return trace_; }

 private:
  ItbsTrace trace_;
  bool loop_;
};

/// Samples another channel at a fixed period and accumulates a trace.
/// Attach to a simulator with Start(); Save() writes the result.
class ChannelRecorder {
 public:
  ChannelRecorder(Simulator& sim, ChannelModel& source, SimTime period);

  void Start();
  const ItbsTrace& trace() const { return trace_; }
  bool Save(const std::string& path) const {
    return SaveItbsTrace(path, trace_);
  }

 private:
  Simulator& sim_;
  ChannelModel& source_;
  SimTime period_;
  ItbsTrace trace_;
  bool started_ = false;
};

}  // namespace flare
