// Priority Set Scheduler (PSS), after Monghal et al. [32] and the ns-3
// module the paper modified.
//
// Time domain: flows whose served rate is below their target/guaranteed bit
// rate form the priority set and are scheduled first, most-starved first
// (largest GBR token-bucket credit). Frequency domain: remaining RBs go to
// all flows under proportional fair. The paper's modification — MBR caps
// retrieved per flow — is enforced upstream via SchedCandidate::max_bytes.
#pragma once

#include "lte/scheduler.h"

namespace flare {

class PssScheduler final : public Scheduler {
 public:
  std::vector<SchedGrant> Allocate(std::vector<SchedCandidate>& candidates,
                                   int n_rbs, Rng& rng) override;
  std::string Name() const override { return "pss"; }
};

}  // namespace flare
