#include "lte/stats_reporter.h"

#include <algorithm>

namespace flare {

StatsReporter::StatsReporter(Cell& cell, SimTime period, ReportFn on_report)
    : cell_(cell), period_(period), on_report_(std::move(on_report)) {
  cell_.sim().Every(period_, period_, [this] {
    if (on_report_) on_report_(cell_.sim().Now(), Collect());
  });
}

std::vector<FlowStatsReport> StatsReporter::Collect() {
  std::vector<FlowStatsReport> reports;
  for (FlowId id : cell_.Flows()) {
    const RbRateWindow window = cell_.TakeWindow(id);
    FlowStatsReport report;
    report.flow = id;
    report.type = cell_.flow(id).type;
    report.tx_bytes = window.tx_bytes;
    report.rbs = window.rbs;
    const double duration_s = std::max(ToSeconds(window.duration), 1e-9);
    report.throughput_bps =
        static_cast<double>(window.tx_bytes) * 8.0 / duration_s;
    const double total_rbs =
        duration_s * 1000.0 * static_cast<double>(cell_.num_rbs());
    report.rb_utilization =
        total_rbs > 0.0 ? static_cast<double>(window.rbs) / total_rbs : 0.0;
    reports.push_back(report);
  }
  return reports;
}

}  // namespace flare
