#include "lte/channel.h"

#include <algorithm>
#include <cmath>

#include "lte/amc.h"
#include "lte/tbs_table.h"

namespace flare {

ItbsOverrideChannel::Schedule TriangleItbsSchedule(int lo, int hi,
                                                   SimTime period,
                                                   SimTime offset) {
  return [lo, hi, period, offset](SimTime now) {
    if (period <= 0 || hi <= lo) return lo;
    const SimTime t = (now + offset) % period;
    const double phase =
        static_cast<double>(t) / static_cast<double>(period);  // [0,1)
    // Rise for the first half of the cycle, fall for the second.
    const double frac = phase < 0.5 ? phase * 2.0 : (1.0 - phase) * 2.0;
    const int steps = hi - lo;
    return lo + static_cast<int>(std::lround(frac * steps));
  };
}

double PathlossDb(double distance_m) {
  const double d_km = std::max(distance_m, 1.0) / 1000.0;
  return 128.1 + 37.6 * std::log10(d_km);
}

double FriisPathlossDb(double distance_m, double freq_hz) {
  constexpr double kC = 3.0e8;
  const double d = std::max(distance_m, 1.0);
  return 20.0 * std::log10(4.0 * M_PI * d * freq_hz / kC);
}

FadedMobilityChannel::FadedMobilityChannel(
    std::shared_ptr<MobilityModel> mobility, const RadioConfig& config,
    Rng rng, Position site)
    : mobility_(std::move(mobility)), config_(config), site_(site) {
  shadowing_db_ = rng.Gaussian(0.0, config_.shadowing_stddev_db);
  // Sum-of-sinusoids fading process: eight oscillators with random phases
  // and Doppler-spread-ish frequencies (0.5..8 Hz), scaled so the marginal
  // standard deviation matches fading_stddev_db. The trace repeats every
  // ~60 s, which is long relative to the BAI and segment timescales.
  constexpr int kOscillators = 8;
  constexpr double kTraceSeconds = 60.0;
  const int samples = static_cast<int>(
      kTraceSeconds * static_cast<double>(kSecond) /
      static_cast<double>(std::max<SimTime>(config_.fading_sample_period, 1)));
  std::vector<double> freq_hz(kOscillators);
  std::vector<double> phase(kOscillators);
  for (int k = 0; k < kOscillators; ++k) {
    freq_hz[k] = rng.Uniform(0.5, 8.0);
    phase[k] = rng.Uniform(0.0, 2.0 * M_PI);
  }
  const double amplitude =
      config_.fading_stddev_db * std::sqrt(2.0 / kOscillators);
  fading_trace_db_.resize(std::max(samples, 1));
  for (int i = 0; i < static_cast<int>(fading_trace_db_.size()); ++i) {
    const double t = static_cast<double>(i) *
                     ToSeconds(config_.fading_sample_period);
    double v = 0.0;
    for (int k = 0; k < kOscillators; ++k) {
      v += amplitude * std::sin(2.0 * M_PI * freq_hz[k] * t + phase[k]);
    }
    fading_trace_db_[i] = v;
  }
}

double FadedMobilityChannel::FadingDbAt(SimTime now) const {
  const auto idx = static_cast<std::size_t>(
      (now / std::max<SimTime>(config_.fading_sample_period, 1)) %
      static_cast<SimTime>(fading_trace_db_.size()));
  return fading_trace_db_[idx];
}

double FadedMobilityChannel::SinrDbAt(SimTime now) {
  const Position p = mobility_->At(now);
  const double distance = std::max(
      std::hypot(p.x - site_.x, p.y - site_.y), config_.min_distance_m);
  double pathloss;
  switch (config_.pathloss) {
    case PathlossModel::kMacro3gpp:
      pathloss = PathlossDb(distance);
      break;
    case PathlossModel::kFriisPenetration:
    default:
      pathloss = FriisPathlossDb(distance) + config_.penetration_loss_db;
      break;
  }
  const double rx_dbm = config_.tx_power_dbm - pathloss + shadowing_db_ +
                        FadingDbAt(now);
  return rx_dbm - config_.noise_dbm;
}

int FadedMobilityChannel::ItbsAt(SimTime now) {
  return SinrDbToItbs(SinrDbAt(now));
}

}  // namespace flare
