// The eNodeB cell: per-TTI MAC loop.
//
// Owns UEs (each with a channel model), per-flow MAC state (RLC queue, QoS
// token buckets, PF averages, RB & Rate Trace counters) and a pluggable
// scheduler. Each 1 ms TTI it:
//   1. refreshes each UE's I_TBS from its channel model,
//   2. refills GBR/MBR token buckets,
//   3. builds scheduling candidates from flows with queued data,
//   4. asks the scheduler to distribute the cell's RBs,
//   5. dequeues the granted bytes and hands them to the delivery callback
//      (the transport layer), updating trace counters and PF averages.
//
// The Continuous GBR Updater of the femtocell prototype corresponds to
// SetGbr()/SetMbr(), callable at any time, not just at bearer setup.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "lte/channel.h"
#include "lte/flow_state.h"
#include "lte/scheduler.h"
#include "lte/types.h"
#include "obs/bai_trace.h"
#include "obs/metrics.h"
#include "obs/span_trace.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace flare {

struct CellConfig {
  int num_rbs = kDefaultNumRbs;
  /// PF EWMA time constant, in TTIs.
  double pf_time_constant = 100.0;
  /// GBR token bucket capacity, as seconds of GBR-rate traffic.
  double gbr_bucket_cap_s = 0.5;
  /// MBR token bucket capacity, as seconds of MBR-rate traffic.
  double mbr_bucket_cap_s = 0.2;
  /// Per-flow RLC queue limit; excess arrivals are dropped (tail drop),
  /// which is what makes TCP sources back off.
  std::uint64_t queue_limit_bytes = 750'000;
  /// Transport-block error rate at the AMC operating point. A failed TB
  /// consumes its RBs but delivers nothing; HARQ keeps the bytes queued,
  /// so they are retransmitted on a later grant (LTE's standard target is
  /// ~0.1 after first transmission; 0 disables the model).
  double target_bler = 0.0;
};

/// Snapshot of the RB & Rate Trace Module for one flow over one window.
struct RbRateWindow {
  std::uint64_t tx_bytes = 0;
  std::uint64_t rbs = 0;
  SimTime duration = 0;
};

class Cell {
 public:
  /// Called when bytes reach the UE (i.e., are transmitted over the air).
  using DeliveryFn =
      std::function<void(FlowId flow, std::uint64_t bytes, SimTime now)>;
  /// Called when an Enqueue overflows the RLC queue.
  using DropFn = std::function<void(FlowId flow, std::uint64_t bytes)>;

  Cell(Simulator& sim, std::unique_ptr<Scheduler> scheduler,
       const CellConfig& config, Rng rng);

  Cell(const Cell&) = delete;
  Cell& operator=(const Cell&) = delete;

  // --- Topology -----------------------------------------------------------
  /// Attach a UE; released slots are reused (lowest id first), so a cell
  /// under session churn does not grow its UE table without bound.
  UeId AddUe(std::unique_ptr<ChannelModel> channel);
  FlowId AddFlow(UeId ue, FlowType type);
  void RemoveFlow(FlowId id);
  /// Detach a UE when its session ends: frees the channel model and stops
  /// the per-TTI refresh for the slot. Throws std::invalid_argument if any
  /// flow still references the UE (remove flows first) or if the slot is
  /// already released.
  void ReleaseUe(UeId ue);
  /// UEs currently attached (released slots excluded).
  std::size_t NumActiveUes() const { return ues_.size() - free_ues_.size(); }

  // --- Data path ----------------------------------------------------------
  /// Offer `bytes` to the flow's RLC queue; returns the bytes accepted.
  std::uint64_t Enqueue(FlowId id, std::uint64_t bytes);
  void SetDeliveryCallback(DeliveryFn fn) { deliver_ = std::move(fn); }
  void SetDropCallback(DropFn fn) { drop_ = std::move(fn); }

  // --- QoS control (Continuous GBR Updater / PCEF enforcement point) ------
  void SetGbr(FlowId id, double bps);
  void SetMbr(FlowId id, double bps);

  // --- Introspection ------------------------------------------------------
  const FlowState& flow(FlowId id) const;
  bool HasFlow(FlowId id) const;
  std::vector<FlowId> Flows() const;
  std::vector<FlowId> FlowsOfType(FlowType type) const;
  int num_rbs() const { return config_.num_rbs; }
  Simulator& sim() { return sim_; }

  /// Current I_TBS of a UE (refreshes from the channel model).
  int UeItbs(UeId ue) const;
  /// Rate (bits/s) the UE would get with the whole cell to itself.
  double UeFullCellRateBps(UeId ue) const;

  // --- RB & Rate Trace Module --------------------------------------------
  /// Per-flow counters accumulated since the last TakeWindow for that flow;
  /// resets the window. Used by the per-BAI controllers (FLARE, AVIS).
  RbRateWindow TakeWindow(FlowId id);
  /// Peek without resetting (Statistics Reporter path).
  RbRateWindow PeekWindow(FlowId id) const;

  std::uint64_t total_tx_bytes(FlowId id) const;
  std::uint64_t total_rbs_used() const { return total_rbs_used_; }
  std::uint64_t ttis_elapsed() const { return ttis_elapsed_; }
  /// Transport blocks lost to the BLER model (HARQ retransmitted).
  std::uint64_t harq_retransmissions() const { return harq_retx_; }

  /// Begin the TTI loop. Call once after construction.
  void Start();

  // --- Observability ------------------------------------------------------
  /// Attach a metrics registry (null detaches): TTI/RB counters, queue
  /// drops, HARQ retransmissions and the GBR shortfall gauge.
  void SetMetrics(MetricsRegistry* registry);
  /// Attach a BAI trace sink (null detaches): per-TTI scheduler aggregates
  /// (RBs per phase, GBR credit shortfall), flushed on the sink's period.
  void SetTraceSink(BaiTraceSink* sink) { trace_sink_ = sink; }
  /// Attach a span tracer (null detaches): the TTI loop's wall-clock cost
  /// is aggregated over 1 s windows into "tti.window" spans on the MAC
  /// lane plus an RBs-used counter track — per-TTI events would be 1000x
  /// the volume for no insight.
  void SetSpanTracer(SpanTracer* tracer);
  /// Emit the final partial span window (call once after the run).
  void FlushSpanWindow();

 private:
  struct UeEntry {
    std::unique_ptr<ChannelModel> channel;  // null = released slot
    int itbs = 0;  // refreshed each TTI
  };
  struct FlowEntry {
    FlowState state;
    SimTime window_start = 0;
  };

  void RunTti();
  FlowEntry& Entry(FlowId id);
  const FlowEntry& Entry(FlowId id) const;

  Simulator& sim_;
  std::unique_ptr<Scheduler> scheduler_;
  CellConfig config_;
  Rng rng_;

  std::vector<UeEntry> ues_;
  /// Released UE slots, kept sorted descending so AddUe reuses the lowest
  /// id first (deterministic slot assignment under churn).
  std::vector<UeId> free_ues_;
  std::map<FlowId, FlowEntry> flows_;
  FlowId next_flow_id_ = 1;

  DeliveryFn deliver_;
  DropFn drop_;

  std::uint64_t total_rbs_used_ = 0;
  std::uint64_t ttis_elapsed_ = 0;
  std::uint64_t harq_retx_ = 0;
  bool started_ = false;

  BaiTraceSink* trace_sink_ = nullptr;
  SpanTracer* span_trace_ = nullptr;
  SimTime span_window_start_ = 0;
  double span_window_wall_us_ = 0.0;
  std::uint64_t span_window_ttis_ = 0;
  std::uint64_t span_window_rbs_ = 0;
  CounterHandle ttis_metric_;
  CounterHandle rbs_used_metric_;
  CounterHandle rbs_priority_metric_;
  CounterHandle rbs_shared_metric_;
  CounterHandle harq_metric_;
  CounterHandle drop_bytes_metric_;
  GaugeHandle gbr_shortfall_metric_;
};

}  // namespace flare
