// Transport block size (TBS) model.
//
// 3GPP TS 36.213 Table 7.1.7.2.1-1 maps (I_TBS, n_PRB) to a transport block
// size in bits. We embed the exact 1-PRB column and scale linearly with the
// PRB count, which tracks the standardized table to within a few percent
// over the 1..50 PRB range this project uses (the true table is slightly
// sub-linear at high PRB counts due to rounding to byte-aligned code block
// sizes). Every consumer in this repository only needs a monotone,
// realistically-scaled rate model, which this preserves.
//
// Note on indices: the JL-620 femtocell in the paper exposes a vendor iTbs
// knob whose scale does not map 1:1 onto the 36.213 I_TBS axis (its "iTbs 2"
// operating point carries ~5 Mbit/s over 50 PRBs). Scenario configs pick
// I_TBS values that reproduce the paper's *capacities*; see DESIGN.md.
#pragma once

namespace flare {

inline constexpr int kMinItbs = 0;
inline constexpr int kMaxItbs = 26;

/// Transport block size in bits for one TTI. Out-of-range arguments are
/// clamped (channel models may overshoot transiently during fading).
int TbsBits(int itbs, int n_prb);

/// Bits carried by a single PRB at the given I_TBS (the 36.213 1-PRB column).
int TbsBitsPerPrb(int itbs);

/// Convenience: achievable MAC-layer rate in bits/s when all `n_prb` PRBs
/// are granted every 1 ms TTI.
double ItbsToCellRateBps(int itbs, int n_prb);

}  // namespace flare
