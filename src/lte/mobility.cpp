#include "lte/mobility.h"

#include <algorithm>
#include <cmath>

namespace flare {

Position RandomPositionInSquare(double area_m, Rng& rng) {
  const double half = area_m / 2.0;
  return Position{rng.Uniform(-half, half), rng.Uniform(-half, half)};
}

Position RandomPositionInAnnulus(double min_radius_m, double max_radius_m,
                                 Rng& rng) {
  const double lo2 = min_radius_m * min_radius_m;
  const double hi2 = max_radius_m * max_radius_m;
  const double r = std::sqrt(rng.Uniform(0.0, 1.0) * (hi2 - lo2) + lo2);
  const double angle = rng.Uniform(0.0, 2.0 * M_PI);
  return Position{r * std::cos(angle), r * std::sin(angle)};
}

RandomWaypointMobility::RandomWaypointMobility(
    const RandomWaypointConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  from_ = RandomPoint();
  to_ = from_;
  leg_end_ = 0;
  pause_end_ = 0;
  PickNextLeg(0);
}

Position RandomWaypointMobility::RandomPoint() {
  return RandomPositionInSquare(config_.area_m, rng_);
}

void RandomWaypointMobility::PickNextLeg(SimTime start) {
  from_ = to_;
  to_ = RandomPoint();
  const double dx = to_.x - from_.x;
  const double dy = to_.y - from_.y;
  const double dist = std::hypot(dx, dy);
  const double speed =
      rng_.Uniform(config_.min_speed_mps, config_.max_speed_mps);
  leg_start_ = start;
  leg_end_ = start + FromSeconds(dist / std::max(speed, 0.1));
  pause_end_ = leg_end_ + FromSeconds(config_.pause_s);
}

Position RandomWaypointMobility::At(SimTime now) {
  while (now >= pause_end_) PickNextLeg(pause_end_);
  if (now >= leg_end_) return to_;  // pausing at the waypoint
  const double frac = static_cast<double>(now - leg_start_) /
                      static_cast<double>(std::max<SimTime>(
                          leg_end_ - leg_start_, 1));
  return Position{from_.x + (to_.x - from_.x) * frac,
                  from_.y + (to_.y - from_.y) * frac};
}

}  // namespace flare
