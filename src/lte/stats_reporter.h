// Statistics Reporter + Communication Module (femtocell, Fig. 3).
//
// Periodically collects each flow's RB utilization and throughput from the
// RB & Rate Trace counters and pushes a report to a registered consumer
// (the OneAPI server's communication endpoint in the full system).
#pragma once

#include <functional>
#include <vector>

#include "lte/cell.h"

namespace flare {

struct FlowStatsReport {
  FlowId flow = kInvalidFlow;
  FlowType type = FlowType::kData;
  /// Bytes transmitted over the reporting period.
  std::uint64_t tx_bytes = 0;
  /// RBs consumed over the reporting period.
  std::uint64_t rbs = 0;
  /// Achieved throughput over the period, bits/s.
  double throughput_bps = 0.0;
  /// Fraction of the cell's RBs this flow consumed over the period.
  double rb_utilization = 0.0;
};

class StatsReporter {
 public:
  using ReportFn =
      std::function<void(SimTime now, const std::vector<FlowStatsReport>&)>;

  /// Reports every `period`, starting one period into the run.
  StatsReporter(Cell& cell, SimTime period, ReportFn on_report);

  /// Build a report for the window since the last snapshot of each flow.
  /// Exposed for tests; normally driven by the periodic timer.
  std::vector<FlowStatsReport> Collect();

 private:
  Cell& cell_;
  SimTime period_;
  ReportFn on_report_;
};

}  // namespace flare
