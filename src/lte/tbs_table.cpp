#include "lte/tbs_table.h"

#include <algorithm>

namespace flare {
namespace {

// 3GPP TS 36.213 Table 7.1.7.2.1-1, n_PRB = 1 column (bits).
constexpr int kTbsPerPrb[kMaxItbs + 1] = {
    16,  24,  32,  40,  56,  72,  88,  104, 120, 136, 144, 176, 208, 224,
    256, 280, 328, 336, 376, 408, 440, 488, 520, 552, 584, 616, 712,
};

}  // namespace

int TbsBitsPerPrb(int itbs) {
  itbs = std::clamp(itbs, kMinItbs, kMaxItbs);
  return kTbsPerPrb[itbs];
}

int TbsBits(int itbs, int n_prb) {
  if (n_prb <= 0) return 0;
  return TbsBitsPerPrb(itbs) * n_prb;
}

double ItbsToCellRateBps(int itbs, int n_prb) {
  // One TTI is 1 ms, so bits per TTI * 1000 = bits per second.
  return static_cast<double>(TbsBits(itbs, n_prb)) * 1000.0;
}

}  // namespace flare
