#include "lte/pss_scheduler.h"

#include <algorithm>

namespace flare {

std::vector<SchedGrant> PssScheduler::Allocate(
    std::vector<SchedCandidate>& candidates, int n_rbs, Rng& /*rng*/) {
  std::vector<SchedGrant> grants;
  tti_stats_ = SchedTtiStats{};
  if (n_rbs <= 0) return grants;

  // --- Priority set: GBR flows still owed bytes this scheduling window.
  std::vector<std::size_t> priority;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FlowState& f = *candidates[i].flow;
    if (f.has_gbr() && f.gbr_credit_bytes > 0.0) priority.push_back(i);
  }
  std::sort(priority.begin(), priority.end(),
            [&](std::size_t a, std::size_t b) {
              const double ca = candidates[a].flow->gbr_credit_bytes;
              const double cb = candidates[b].flow->gbr_credit_bytes;
              if (ca != cb) return ca > cb;  // most starved first
              return candidates[a].flow->id < candidates[b].flow->id;
            });

  int used = 0;
  for (std::size_t idx : priority) {
    if (used >= n_rbs) break;
    SchedCandidate& c = candidates[idx];
    if (c.bytes_per_rb == 0) continue;
    // Serve up to the GBR debt (token credit), bounded by queue/MBR.
    const auto owed = static_cast<std::uint64_t>(
        std::max(c.flow->gbr_credit_bytes, 0.0));
    const std::uint64_t want = std::min<std::uint64_t>(owed, c.max_bytes);
    if (want == 0) continue;
    const int rbs = std::min(RbsForBytes(want, c.bytes_per_rb), n_rbs - used);
    if (rbs <= 0) continue;
    const std::uint64_t bytes = std::min<std::uint64_t>(
        want, static_cast<std::uint64_t>(rbs) * c.bytes_per_rb);
    grants.push_back(SchedGrant{c.flow, rbs, bytes});
    used += rbs;
  }

  tti_stats_.rbs_priority = used;

  // --- Frequency domain: leftover RBs under proportional fair, all flows.
  // As in the two-phase scheduler, a priority-set flow may be served again
  // here; coalescing keeps the one-grant-per-flow contract.
  tti_stats_.rbs_shared =
      ProportionalFairPass(candidates, n_rbs - used, grants);
  CoalesceGrants(grants);
  return grants;
}

}  // namespace flare
