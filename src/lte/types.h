// Common identifier and flow types for the LTE substrate.
#pragma once

#include <cstdint>
#include <limits>

namespace flare {

using UeId = std::uint32_t;
using FlowId = std::uint32_t;

inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();

/// Flow classes the paper distinguishes: HAS video flows (which FLARE/AVIS
/// service with a GBR bearer) and best-effort data flows (iperf-style TCP).
enum class FlowType { kVideo, kData };

inline const char* FlowTypeName(FlowType t) {
  return t == FlowType::kVideo ? "video" : "data";
}

/// Cell-level constants for the 10 MHz FDD femtocell in the paper (JL-620):
/// 50 resource blocks per 1 ms TTI.
inline constexpr int kDefaultNumRbs = 50;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

}  // namespace flare
