#include "lte/cell.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "lte/tbs_table.h"
#include "util/logging.h"

namespace flare {

Cell::Cell(Simulator& sim, std::unique_ptr<Scheduler> scheduler,
           const CellConfig& config, Rng rng)
    : sim_(sim),
      scheduler_(std::move(scheduler)),
      config_(config),
      rng_(rng) {
  if (!scheduler_) throw std::invalid_argument("Cell: scheduler is null");
  if (config_.num_rbs <= 0) throw std::invalid_argument("Cell: num_rbs <= 0");
}

UeId Cell::AddUe(std::unique_ptr<ChannelModel> channel) {
  if (!channel) throw std::invalid_argument("Cell::AddUe: channel is null");
  UeEntry entry;
  entry.channel = std::move(channel);
  entry.itbs = entry.channel->ItbsAt(sim_.Now());
  if (!free_ues_.empty()) {
    const UeId id = free_ues_.back();  // lowest released id
    free_ues_.pop_back();
    ues_[id] = std::move(entry);
    return id;
  }
  ues_.push_back(std::move(entry));
  return static_cast<UeId>(ues_.size() - 1);
}

FlowId Cell::AddFlow(UeId ue, FlowType type) {
  if (ue >= ues_.size() || ues_[ue].channel == nullptr) {
    throw std::out_of_range("Cell::AddFlow: bad or released UE");
  }
  const FlowId id = next_flow_id_++;
  FlowEntry entry;
  entry.state.id = id;
  entry.state.ue = ue;
  entry.state.type = type;
  entry.window_start = sim_.Now();
  flows_.emplace(id, std::move(entry));
  return id;
}

void Cell::RemoveFlow(FlowId id) { flows_.erase(id); }

void Cell::ReleaseUe(UeId ue) {
  if (ue >= ues_.size() || ues_[ue].channel == nullptr) {
    throw std::invalid_argument("Cell::ReleaseUe: bad or released UE");
  }
  for (const auto& [id, entry] : flows_) {
    if (entry.state.ue == ue) {
      throw std::invalid_argument(
          "Cell::ReleaseUe: UE still has flows attached");
    }
  }
  ues_[ue].channel.reset();
  ues_[ue].itbs = 0;
  // Insert keeping descending order: back() is always the lowest free id.
  const auto pos = std::lower_bound(free_ues_.begin(), free_ues_.end(), ue,
                                    std::greater<UeId>());
  free_ues_.insert(pos, ue);
}

Cell::FlowEntry& Cell::Entry(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) throw std::out_of_range("Cell: unknown flow");
  return it->second;
}

const Cell::FlowEntry& Cell::Entry(FlowId id) const {
  const auto it = flows_.find(id);
  if (it == flows_.end()) throw std::out_of_range("Cell: unknown flow");
  return it->second;
}

std::uint64_t Cell::Enqueue(FlowId id, std::uint64_t bytes) {
  FlowState& f = Entry(id).state;
  const std::uint64_t room =
      f.queued_bytes >= config_.queue_limit_bytes
          ? 0
          : config_.queue_limit_bytes - f.queued_bytes;
  const std::uint64_t accepted = std::min(bytes, room);
  f.queued_bytes += accepted;
  if (accepted < bytes) {
    drop_bytes_metric_.Add(bytes - accepted);
    if (drop_) drop_(id, bytes - accepted);
  }
  return accepted;
}

void Cell::SetGbr(FlowId id, double bps) {
  FlowState& f = Entry(id).state;
  f.gbr_bps = std::max(bps, 0.0);
  // Re-cap the credit so lowering the GBR takes effect promptly.
  const double cap = f.gbr_bps / 8.0 * config_.gbr_bucket_cap_s;
  f.gbr_credit_bytes = std::min(f.gbr_credit_bytes, cap);
}

void Cell::SetMbr(FlowId id, double bps) {
  FlowState& f = Entry(id).state;
  f.mbr_bps = bps <= 0.0 ? kNoRateLimit : bps;
  if (f.mbr_bps != kNoRateLimit) {
    const double cap = f.mbr_bps / 8.0 * config_.mbr_bucket_cap_s;
    f.mbr_credit_bytes = std::min(f.mbr_credit_bytes, cap);
  }
}

const FlowState& Cell::flow(FlowId id) const { return Entry(id).state; }

bool Cell::HasFlow(FlowId id) const { return flows_.count(id) > 0; }

std::vector<FlowId> Cell::Flows() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for (const auto& [id, entry] : flows_) out.push_back(id);
  return out;
}

std::vector<FlowId> Cell::FlowsOfType(FlowType type) const {
  std::vector<FlowId> out;
  for (const auto& [id, entry] : flows_) {
    if (entry.state.type == type) out.push_back(id);
  }
  return out;
}

int Cell::UeItbs(UeId ue) const {
  if (ue >= ues_.size() || ues_[ue].channel == nullptr) {
    throw std::out_of_range("Cell::UeItbs: bad or released UE");
  }
  return ues_[ue].itbs;
}

double Cell::UeFullCellRateBps(UeId ue) const {
  return ItbsToCellRateBps(UeItbs(ue), config_.num_rbs);
}

RbRateWindow Cell::TakeWindow(FlowId id) {
  FlowEntry& entry = Entry(id);
  RbRateWindow window;
  window.tx_bytes = entry.state.window_tx_bytes;
  window.rbs = entry.state.window_rbs;
  window.duration = sim_.Now() - entry.window_start;
  entry.state.window_tx_bytes = 0;
  entry.state.window_rbs = 0;
  entry.window_start = sim_.Now();
  return window;
}

RbRateWindow Cell::PeekWindow(FlowId id) const {
  const FlowEntry& entry = Entry(id);
  return RbRateWindow{entry.state.window_tx_bytes, entry.state.window_rbs,
                      sim_.Now() - entry.window_start};
}

std::uint64_t Cell::total_tx_bytes(FlowId id) const {
  return Entry(id).state.total_tx_bytes;
}

void Cell::SetMetrics(MetricsRegistry* registry) {
  ttis_metric_ = MakeCounterHandle(registry, "cell.ttis");
  rbs_used_metric_ = MakeCounterHandle(registry, "cell.rbs_used");
  rbs_priority_metric_ = MakeCounterHandle(registry, "cell.rbs_priority");
  rbs_shared_metric_ = MakeCounterHandle(registry, "cell.rbs_shared");
  harq_metric_ = MakeCounterHandle(registry, "cell.harq_retx");
  drop_bytes_metric_ = MakeCounterHandle(registry, "cell.queue_drop_bytes");
  gbr_shortfall_metric_ =
      MakeGaugeHandle(registry, "cell.gbr_shortfall_bytes");
}

void Cell::SetSpanTracer(SpanTracer* tracer) {
  span_trace_ = tracer;
  span_window_start_ = sim_.Now();
  span_window_wall_us_ = 0.0;
  span_window_ttis_ = 0;
  span_window_rbs_ = 0;
}

void Cell::FlushSpanWindow() {
  if (span_trace_ == nullptr || span_window_ttis_ == 0) return;
  span_trace_->CompleteSpan(
      kLaneMac, "cell", "tti.window",
      static_cast<double>(span_window_start_), span_window_wall_us_,
      "{\"ttis\":" + std::to_string(span_window_ttis_) +
          ",\"rbs\":" + std::to_string(span_window_rbs_) + "}");
  span_trace_->Counter(kLaneMac, "cell.rbs_per_window",
                       static_cast<double>(sim_.Now()),
                       static_cast<double>(span_window_rbs_));
  span_window_start_ = sim_.Now();
  span_window_wall_us_ = 0.0;
  span_window_ttis_ = 0;
  span_window_rbs_ = 0;
}

void Cell::Start() {
  if (started_) return;
  started_ = true;
  sim_.Every(0, kTti, [this] { RunTti(); });
}

void Cell::RunTti() {
  const SimTime now = sim_.Now();
  const double tti_s = ToSeconds(kTti);
  ++ttis_elapsed_;
  const bool span_timing =
      span_trace_ != nullptr && !span_trace_->deterministic();
  const auto span_start = span_timing ? std::chrono::steady_clock::now()
                                      : std::chrono::steady_clock::time_point{};

  // 1. Refresh channels (released slots have no channel to sample — and
  // under churn they must cost nothing, not accumulate forever).
  for (UeEntry& ue : ues_) {
    if (ue.channel) ue.itbs = ue.channel->ItbsAt(now);
  }

  // 2. Refill token buckets and build candidates.
  std::vector<SchedCandidate> candidates;
  candidates.reserve(flows_.size());
  for (auto& [id, entry] : flows_) {
    FlowState& f = entry.state;
    if (f.has_gbr()) {
      const double cap = f.gbr_bps / 8.0 * config_.gbr_bucket_cap_s;
      f.gbr_credit_bytes =
          std::min(f.gbr_credit_bytes + f.gbr_bps / 8.0 * tti_s, cap);
    } else {
      f.gbr_credit_bytes = 0.0;
    }
    if (f.mbr_bps != kNoRateLimit) {
      const double cap = f.mbr_bps / 8.0 * config_.mbr_bucket_cap_s;
      f.mbr_credit_bytes =
          std::min(f.mbr_credit_bytes + f.mbr_bps / 8.0 * tti_s, cap);
    }

    if (f.queued_bytes == 0) continue;
    SchedCandidate c;
    c.flow = &f;
    const int bits = TbsBitsPerPrb(ues_[f.ue].itbs);
    c.bytes_per_rb = static_cast<std::uint32_t>(bits / 8);
    c.max_bytes = f.queued_bytes;
    if (f.mbr_bps != kNoRateLimit) {
      c.max_bytes = std::min<std::uint64_t>(
          c.max_bytes,
          static_cast<std::uint64_t>(std::max(f.mbr_credit_bytes, 0.0)));
    }
    if (c.max_bytes == 0 || c.bytes_per_rb == 0) continue;
    candidates.push_back(c);
  }

  // 3. Schedule.
  std::vector<SchedGrant> grants;
  if (!candidates.empty()) {
    grants = scheduler_->Allocate(candidates, config_.num_rbs, rng_);
  }

  // 4. Apply grants: drain queues, charge buckets, update trace counters.
  std::map<FlowId, std::uint64_t> served;
  int rbs_used = 0;
  for (const SchedGrant& g : grants) {
    if (g.flow == nullptr || g.bytes == 0) continue;
    FlowState& f = *g.flow;

    // BLER/HARQ: a failed transport block burns its RBs but delivers
    // nothing; the bytes stay queued and go out on a later grant.
    if (config_.target_bler > 0.0 &&
        rng_.Uniform() < config_.target_bler) {
      f.window_rbs += static_cast<std::uint64_t>(g.rbs);
      f.total_rbs += static_cast<std::uint64_t>(g.rbs);
      rbs_used += g.rbs;
      ++harq_retx_;
      harq_metric_.Add();
      continue;
    }

    const std::uint64_t bytes = std::min<std::uint64_t>(g.bytes,
                                                        f.queued_bytes);
    f.queued_bytes -= bytes;
    f.gbr_credit_bytes -= static_cast<double>(bytes);
    if (f.gbr_credit_bytes < 0.0) f.gbr_credit_bytes = 0.0;
    if (f.mbr_bps != kNoRateLimit) {
      f.mbr_credit_bytes -= static_cast<double>(bytes);
    }
    f.window_tx_bytes += bytes;
    f.window_rbs += static_cast<std::uint64_t>(g.rbs);
    f.total_tx_bytes += bytes;
    f.total_rbs += static_cast<std::uint64_t>(g.rbs);
    served[f.id] += bytes;
    rbs_used += g.rbs;
  }
  assert(rbs_used <= config_.num_rbs);
  total_rbs_used_ += static_cast<std::uint64_t>(rbs_used);

  // Observability: TTI counters, phase split, and the GBR credit left
  // unserved after this TTI (sustained shortfall = the cell cannot honour
  // the GBRs the control plane installed).
  ttis_metric_.Add();
  rbs_used_metric_.Add(static_cast<std::uint64_t>(rbs_used));
  // (Allocate is skipped on idle TTIs, so its stats would be stale then.)
  const SchedTtiStats phase =
      candidates.empty() ? SchedTtiStats{} : scheduler_->tti_stats();
  rbs_priority_metric_.Add(static_cast<std::uint64_t>(phase.rbs_priority));
  rbs_shared_metric_.Add(static_cast<std::uint64_t>(phase.rbs_shared));
  if (trace_sink_ != nullptr || gbr_shortfall_metric_.enabled()) {
    double shortfall = 0.0;
    for (const auto& [id, entry] : flows_) {
      if (entry.state.has_gbr()) {
        shortfall += std::max(entry.state.gbr_credit_bytes, 0.0);
      }
    }
    gbr_shortfall_metric_.Set(shortfall);
    if (trace_sink_ != nullptr) {
      trace_sink_->RecordTti(now, phase.rbs_priority, phase.rbs_shared,
                             shortfall);
    }
  }

  // 5. PF averages: every flow decays; served flows add their TTI rate.
  const double tc = std::max(config_.pf_time_constant, 1.0);
  for (auto& [id, entry] : flows_) {
    FlowState& f = entry.state;
    const auto it = served.find(id);
    const double rate_bps =
        it == served.end() ? 0.0
                           : static_cast<double>(it->second) * 8.0 / tti_s;
    f.pf_avg_bps = (1.0 - 1.0 / tc) * f.pf_avg_bps + rate_bps / tc;
    if (f.pf_avg_bps < 1.0) f.pf_avg_bps = 1.0;
  }

  // 6. Deliver.
  if (deliver_) {
    for (const auto& [id, bytes] : served) deliver_(id, bytes, now);
  }

  // Span sampling: accumulate this TTI's wall-clock cost (including the
  // synchronous delivery above) into the current window.
  if (span_trace_ != nullptr) {
    if (span_timing) {
      span_window_wall_us_ +=
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - span_start)
              .count();
    }
    ++span_window_ttis_;
    span_window_rbs_ += static_cast<std::uint64_t>(rbs_used);
    if (now - span_window_start_ >= kSecond) FlushSpanWindow();
  }
}

}  // namespace flare
