// UE mobility models.
//
// The paper's ns-3 study places UEs randomly in a 2000 m x 2000 m area and,
// for the mobile scenarios, moves them like vehicles. We provide a static
// placement model and a random-waypoint model with configurable speed range
// (vehicular defaults: 10..30 m/s, zero pause).
#pragma once

#include <memory>
#include <vector>

#include "lte/types.h"
#include "util/rng.h"
#include "util/time.h"

namespace flare {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  /// Position at simulated time `now`. Must be non-decreasing in `now`
  /// across calls (models may advance internal state).
  virtual Position At(SimTime now) = 0;
};

/// A UE that never moves.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Position p) : position_(p) {}
  Position At(SimTime) override { return position_; }

 private:
  Position position_;
};

struct RandomWaypointConfig {
  double area_m = 2000.0;       // square side length
  double min_speed_mps = 10.0;  // vehicular defaults
  double max_speed_mps = 30.0;
  double pause_s = 0.0;
};

/// Classic random-waypoint mobility inside a square area centred on (0,0)
/// (the eNodeB sits at the origin).
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(const RandomWaypointConfig& config, Rng rng);

  Position At(SimTime now) override;

 private:
  void PickNextLeg(SimTime start);
  Position RandomPoint();

  RandomWaypointConfig config_;
  Rng rng_;
  Position from_{};
  Position to_{};
  SimTime leg_start_ = 0;
  SimTime leg_end_ = 0;    // arrival at `to_`
  SimTime pause_end_ = 0;  // end of pause after arrival
};

/// Uniformly random static placement helper used by scenario builders.
Position RandomPositionInSquare(double area_m, Rng& rng);

/// Area-uniform placement in the annulus min_radius <= |p| <= max_radius
/// around the eNB. Scenario builders use this to control the near-far
/// spread of stationary UEs.
Position RandomPositionInAnnulus(double min_radius_m, double max_radius_m,
                                 Rng& rng);

}  // namespace flare
