// FLARE femtocell Scheduler Module: two-phase GBR-based per-TTI scheduling.
//
// Phase 1 serves *video* flows up to their GBR (token-bucket credit); Phase
// 2 allocates the remaining RBs to both video and data flows with legacy
// proportional fair. Because data traffic is non-GBR, its RBs can be
// opportunistically borrowed by video flows when the OneAPI server's
// optimization lags wireless dynamics — the property the paper credits for
// FLARE's zero buffer underflow (§IV-A).
#pragma once

#include "lte/scheduler.h"

namespace flare {

class TwoPhaseGbrScheduler final : public Scheduler {
 public:
  /// If `video_only_phase2` is true, phase 2 excludes data flows entirely
  /// (used by the ablation bench; the paper's scheduler includes both).
  explicit TwoPhaseGbrScheduler(bool video_only_phase2 = false)
      : video_only_phase2_(video_only_phase2) {}

  std::vector<SchedGrant> Allocate(std::vector<SchedCandidate>& candidates,
                                   int n_rbs, Rng& rng) override;
  std::string Name() const override { return "two-phase-gbr"; }

 private:
  bool video_only_phase2_;
};

}  // namespace flare
