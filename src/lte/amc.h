// Adaptive modulation and coding (AMC): SINR -> CQI -> I_TBS.
//
// The CQI selection follows the usual link-level abstraction: CQI 1..15
// spans roughly -6 dB .. +20 dB SINR, and each CQI maps to an I_TBS via a
// monotone table approximating the ns-3 LteAmc/36.213 mapping. Exact link
// adaptation curves differ per vendor; only monotonicity and the spanned
// rate range affect the experiments.
#pragma once

namespace flare {

inline constexpr int kMinCqi = 1;
inline constexpr int kMaxCqi = 15;

/// SINR (dB) to CQI. Values below the CQI-1 threshold still return CQI 1:
/// the UE stays attached at the lowest MCS rather than dropping out.
int SinrDbToCqi(double sinr_db);

/// CQI to I_TBS (36.213-style monotone mapping).
int CqiToItbs(int cqi);

/// Composition of the two mappings.
int SinrDbToItbs(double sinr_db);

}  // namespace flare
