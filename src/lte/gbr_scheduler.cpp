#include "lte/gbr_scheduler.h"

#include <algorithm>

namespace flare {

std::vector<SchedGrant> TwoPhaseGbrScheduler::Allocate(
    std::vector<SchedCandidate>& candidates, int n_rbs, Rng& /*rng*/) {
  std::vector<SchedGrant> grants;
  tti_stats_ = SchedTtiStats{};
  if (n_rbs <= 0) return grants;

  // --- Phase 1: GBR-based scheduling of video flows, most starved first.
  std::vector<std::size_t> phase1;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FlowState& f = *candidates[i].flow;
    if (f.type == FlowType::kVideo && f.has_gbr() &&
        f.gbr_credit_bytes > 0.0) {
      phase1.push_back(i);
    }
  }
  std::sort(phase1.begin(), phase1.end(), [&](std::size_t a, std::size_t b) {
    const double ca = candidates[a].flow->gbr_credit_bytes;
    const double cb = candidates[b].flow->gbr_credit_bytes;
    if (ca != cb) return ca > cb;
    return candidates[a].flow->id < candidates[b].flow->id;
  });

  int used = 0;
  for (std::size_t idx : phase1) {
    if (used >= n_rbs) break;
    SchedCandidate& c = candidates[idx];
    if (c.bytes_per_rb == 0) continue;
    const auto owed = static_cast<std::uint64_t>(
        std::max(c.flow->gbr_credit_bytes, 0.0));
    const std::uint64_t want = std::min<std::uint64_t>(owed, c.max_bytes);
    if (want == 0) continue;
    const int rbs = std::min(RbsForBytes(want, c.bytes_per_rb), n_rbs - used);
    if (rbs <= 0) continue;
    const std::uint64_t bytes = std::min<std::uint64_t>(
        want, static_cast<std::uint64_t>(rbs) * c.bytes_per_rb);
    grants.push_back(SchedGrant{c.flow, rbs, bytes});
    used += rbs;
  }

  tti_stats_.rbs_priority = used;

  // --- Phase 2: legacy proportional fair over the remaining RBs. A video
  // flow already served in phase 1 may win further RBs here (that is the
  // opportunistic borrowing §IV-A credits for zero underflow); its two
  // partial grants are then coalesced so callers see one grant per flow.
  if (video_only_phase2_) {
    std::vector<SchedCandidate> video;
    for (const SchedCandidate& c : candidates) {
      if (c.flow->type == FlowType::kVideo) video.push_back(c);
    }
    tti_stats_.rbs_shared =
        ProportionalFairPass(video, n_rbs - used, grants);
  } else {
    tti_stats_.rbs_shared =
        ProportionalFairPass(candidates, n_rbs - used, grants);
  }
  CoalesceGrants(grants);
  return grants;
}

}  // namespace flare
