// Per-UE downlink channel models. A channel answers one question each TTI:
// what I_TBS can this UE sustain right now?
//
// Three models cover the paper's setups:
//  * StaticItbsChannel    — testbed static scenario (fixed vendor iTbs knob).
//  * ItbsOverrideChannel  — testbed dynamic scenario; reproduces the iTbs
//    Override Module of the femtocell (arbitrary iTbs-vs-time schedule; a
//    triangle-wave helper matches the paper's 1->12->1 cycle with per-UE
//    phase offsets).
//  * FadedMobilityChannel — ns-3-style scenario: distance-based pathloss
//    (3GPP macro model) + log-normal shadowing + a trace-based fast-fading
//    process, mapped through AMC to an I_TBS.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lte/mobility.h"
#include "lte/types.h"
#include "util/rng.h"
#include "util/time.h"

namespace flare {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;
  /// I_TBS this UE can sustain at time `now`.
  virtual int ItbsAt(SimTime now) = 0;
};

class StaticItbsChannel final : public ChannelModel {
 public:
  explicit StaticItbsChannel(int itbs) : itbs_(itbs) {}
  int ItbsAt(SimTime) override { return itbs_; }

 private:
  int itbs_;
};

/// iTbs Override Module: the I_TBS follows a caller-provided schedule.
class ItbsOverrideChannel final : public ChannelModel {
 public:
  using Schedule = std::function<int(SimTime)>;
  explicit ItbsOverrideChannel(Schedule schedule)
      : schedule_(std::move(schedule)) {}
  int ItbsAt(SimTime now) override { return schedule_(now); }

 private:
  Schedule schedule_;
};

/// Triangle wave schedule lo -> hi -> lo with the given full period,
/// starting at phase `offset` into the cycle. Matches the paper's dynamic
/// scenario (iTbs 1..12 over 4 minutes, per-UE offsets).
ItbsOverrideChannel::Schedule TriangleItbsSchedule(int lo, int hi,
                                                   SimTime period,
                                                   SimTime offset);

enum class PathlossModel {
  /// 3GPP macro: 128.1 + 37.6 log10(d_km). Steep; produces strong
  /// near-far spread (cell-edge UEs at the lowest MCS).
  kMacro3gpp,
  /// Friis free-space at 2.12 GHz plus a flat penetration loss. This is
  /// the ns-3 LTE default of the paper's era and keeps all UEs in a 2 km
  /// box within a narrow MCS band — matching the near-equal per-client
  /// averages (Jain ~0.99) the paper reports for every scheme.
  kFriisPenetration,
};

struct RadioConfig {
  PathlossModel pathloss = PathlossModel::kFriisPenetration;
  double tx_power_dbm = 30.0;      // ns-3 LTE default eNB power
  double noise_dbm = -95.0;        // thermal noise + NF over 9 MHz
  double penetration_loss_db = 16.0;  // applied under kFriisPenetration
  double shadowing_stddev_db = 3.0;
  double fading_stddev_db = 2.0;
  SimTime fading_sample_period = 10 * kMillisecond;
  double min_distance_m = 10.0;    // pathloss clamp near the eNB
};

/// 3GPP macro pathloss: 128.1 + 37.6 log10(d_km) dB.
double PathlossDb(double distance_m);

/// Friis free-space pathloss at carrier frequency `freq_hz`.
double FriisPathlossDb(double distance_m, double freq_hz = 2.12e9);

/// Pathloss + shadowing + trace-based fast fading over a mobility model.
///
/// The mobility model is shared (a UE visible to several eNodeBs has one
/// trajectory but one channel per site); `site` is the eNodeB position
/// the pathloss is computed against.
class FadedMobilityChannel final : public ChannelModel {
 public:
  FadedMobilityChannel(std::shared_ptr<MobilityModel> mobility,
                       const RadioConfig& config, Rng rng,
                       Position site = Position{0.0, 0.0});

  int ItbsAt(SimTime now) override;

  /// SINR before AMC quantization (exposed for tests, debugging and the
  /// handover manager's measurements).
  double SinrDbAt(SimTime now);

 private:
  double FadingDbAt(SimTime now) const;

  std::shared_ptr<MobilityModel> mobility_;
  RadioConfig config_;
  Position site_;
  double shadowing_db_;
  // Pre-generated repeating fading trace ("trace based model" in Table III):
  // a sum-of-sinusoids Jakes-style process sampled every
  // `fading_sample_period`.
  std::vector<double> fading_trace_db_;
};

}  // namespace flare
