#include "lte/trace_channel.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sim/simulator.h"
#include "util/csv.h"

namespace flare {

bool SaveItbsTrace(const std::string& path, const ItbsTrace& trace) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << "t_s,itbs\n";
  for (const auto& [t, itbs] : trace) {
    out << FormatNumber(t) << ',' << itbs << '\n';
  }
  return true;
}

std::optional<ItbsTrace> LoadItbsTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;
  ItbsTrace trace;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first && line.rfind("t_s", 0) == 0) {
      first = false;
      continue;  // header
    }
    first = false;
    const auto comma = line.find(',');
    if (comma == std::string::npos) return std::nullopt;
    char* end = nullptr;
    const std::string t_text = line.substr(0, comma);
    const double t = std::strtod(t_text.c_str(), &end);
    if (end == t_text.c_str() || *end != '\0') return std::nullopt;
    const std::string i_text = line.substr(comma + 1);
    const long itbs = std::strtol(i_text.c_str(), &end, 10);
    if (end == i_text.c_str() || *end != '\0') return std::nullopt;
    if (!trace.empty() && t <= trace.back().first) return std::nullopt;
    trace.emplace_back(t, static_cast<int>(itbs));
  }
  if (trace.empty()) return std::nullopt;
  return trace;
}

TraceFileChannel::TraceFileChannel(ItbsTrace trace, bool loop)
    : trace_(std::move(trace)), loop_(loop) {
  if (trace_.empty()) {
    throw std::invalid_argument("TraceFileChannel: empty trace");
  }
}

int TraceFileChannel::ItbsAt(SimTime now) {
  double t = ToSeconds(now);
  if (loop_) {
    const double period = trace_.back().first;
    if (period > 0.0) {
      t = std::fmod(t, period);
    }
  }
  // Last entry with time <= t (step function); before the first entry the
  // first value applies.
  const auto it = std::upper_bound(
      trace_.begin(), trace_.end(), t,
      [](double value, const std::pair<double, int>& entry) {
        return value < entry.first;
      });
  if (it == trace_.begin()) return trace_.front().second;
  return std::prev(it)->second;
}

ChannelRecorder::ChannelRecorder(Simulator& sim, ChannelModel& source,
                                 SimTime period)
    : sim_(sim), source_(source), period_(period) {}

void ChannelRecorder::Start() {
  if (started_) return;
  started_ = true;
  sim_.Every(0, period_, [this] {
    trace_.emplace_back(ToSeconds(sim_.Now()),
                        source_.ItbsAt(sim_.Now()));
  });
}

}  // namespace flare
