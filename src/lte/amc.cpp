#include "lte/amc.h"

#include <algorithm>
#include <cmath>

#include "lte/tbs_table.h"

namespace flare {
namespace {

// CQI -> I_TBS, index 0 unused (CQI 0 = out of range, clamped to 1).
constexpr int kCqiToItbs[kMaxCqi + 1] = {
    0, 0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 26,
};

// SINR range covered by the 15 CQI steps.
constexpr double kMinSinrDb = -6.0;
constexpr double kMaxSinrDb = 20.0;

}  // namespace

int SinrDbToCqi(double sinr_db) {
  const double span = kMaxSinrDb - kMinSinrDb;
  const double frac = (sinr_db - kMinSinrDb) / span;
  const int cqi =
      kMinCqi + static_cast<int>(std::floor(frac * (kMaxCqi - kMinCqi)));
  return std::clamp(cqi, kMinCqi, kMaxCqi);
}

int CqiToItbs(int cqi) {
  cqi = std::clamp(cqi, kMinCqi, kMaxCqi);
  return kCqiToItbs[cqi];
}

int SinrDbToItbs(double sinr_db) { return CqiToItbs(SinrDbToCqi(sinr_db)); }

}  // namespace flare
