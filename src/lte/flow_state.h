// Per-flow MAC-layer state kept by the eNodeB: the RLC queue, the GBR/MBR
// token buckets the schedulers consume, the proportional-fair average, and
// the byte/RB counters behind the RB & Rate Trace Module.
#pragma once

#include <cstdint>
#include <limits>

#include "lte/types.h"

namespace flare {

inline constexpr double kNoRateLimit = std::numeric_limits<double>::infinity();

struct FlowState {
  FlowId id = kInvalidFlow;
  UeId ue = 0;
  FlowType type = FlowType::kData;

  // --- Bearer QoS parameters (set by the Continuous GBR Updater / PCEF).
  double gbr_bps = 0.0;           // 0 => non-GBR bearer
  double mbr_bps = kNoRateLimit;  // infinity => uncapped

  // --- RLC downlink queue (bytes awaiting transmission at the eNB).
  std::uint64_t queued_bytes = 0;

  // --- Token buckets, in bytes. The GBR bucket accrues gbr_bps/8 per
  // second and is drained by phase-1/priority scheduling; the MBR bucket
  // gates all scheduling of the flow.
  double gbr_credit_bytes = 0.0;
  double mbr_credit_bytes = 0.0;

  // --- Proportional-fair average throughput (EWMA, bits/s). Starts at a
  // small positive value so new flows get immediate priority without
  // dividing by zero.
  double pf_avg_bps = 1.0;

  // --- RB & Rate Trace Module counters. `window_*` accumulate since the
  // last BAI snapshot; `total_*` since flow creation.
  std::uint64_t window_tx_bytes = 0;
  std::uint64_t window_rbs = 0;
  std::uint64_t total_tx_bytes = 0;
  std::uint64_t total_rbs = 0;

  bool has_gbr() const { return gbr_bps > 0.0; }
};

}  // namespace flare
